"""Scenario specifications: one frozen, serializable simulation point.

A :class:`ScenarioSpec` captures *everything* that determines a run's
outcome — workload, configuration, rate, core count, horizon, seed,
governor, turbo override, snoop flag and the cluster dimensions (node
count, balancer, fan-out, hedge delay) — so that two equal specs always
denote the same result. That property backs the shared memo cache
(:mod:`repro.sweep.runner`) and lets specs travel to worker processes as
plain dicts.

:class:`ScenarioGrid` builds sweeps declaratively::

    grid = ScenarioGrid.product(
        workloads=["memcached"],
        configs=["baseline", "AW"],
        qps=[10e3, 100e3, 500e3],
    )
    results = SweepRunner(executor="process", jobs=4).run_grid(grid)
"""

from __future__ import annotations

import inspect
from dataclasses import asdict, dataclass, fields, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
    cast,
)

from repro.cluster.balancer import (
    BALANCER_FACTORIES,
    register_balancer,  # noqa: F401  (re-exported via repro.sweep)
)
from repro.errors import ConfigurationError
from repro.governor.idle import FixedGovernor, MenuGovernor, ReplayOracleGovernor
from repro.server.config import ServerConfiguration, named_configuration
from repro.server.metrics import RunResult
from repro.workloads import kafka_workload, memcached_workload, mysql_workload
from repro.workloads.base import Workload

#: Default simulation horizon (seconds). Long enough for stable p99 at the
#: lowest Memcached rate (10 KQPS x 0.4 s = 4 000 requests).
DEFAULT_HORIZON = 0.4

#: Default core count: one socket of the Xeon Silver 4114.
DEFAULT_CORES = 10

#: Default seed: every experiment is reproducible bit-for-bit.
DEFAULT_SEED = 42

#: Workload factories by name. Factories return *fresh* instances so each
#: run gets independent RNG streams. Extend via :func:`register_workload`.
WORKLOAD_FACTORIES: Dict[str, Callable[[], Workload]] = {
    "memcached": memcached_workload,
    "kafka": kafka_workload,
    "mysql": mysql_workload,
}

#: Governor factories by name. Extend via :func:`register_governor`.
#: Note: worker processes only see factories registered at import time of
#: this module (or of modules they import), not ad-hoc ``__main__`` ones.
GOVERNOR_FACTORIES: Dict[str, Callable[[], object]] = {
    "menu": MenuGovernor,
    "c1_only": lambda: FixedGovernor("C1"),
    "oracle": ReplayOracleGovernor,
}

#: Factories guaranteed to exist in *worker* processes: anything
#: registered (or overridden) after import via
#: register_workload/register_governor lives only in the registering
#: process unless workers are forked from it. The process executor checks
#: specs against these snapshots — by name *and* factory identity, so
#: overriding a built-in name is caught too — before submitting when the
#: multiprocessing start method does not inherit parent memory.
IMPORT_TIME_WORKLOAD_FACTORIES = dict(WORKLOAD_FACTORIES)
IMPORT_TIME_GOVERNOR_FACTORIES = dict(GOVERNOR_FACTORIES)
IMPORT_TIME_WORKLOADS = frozenset(IMPORT_TIME_WORKLOAD_FACTORIES)
IMPORT_TIME_GOVERNORS = frozenset(IMPORT_TIME_GOVERNOR_FACTORIES)

#: Workload-seed stride between cluster nodes: node ``i`` rebuilds its
#: workload at ``factory_default_seed + i * stride`` when the factory
#: exposes an integer ``seed`` keyword, so the per-node service-time RNG
#: streams are independent. Node 0 always uses the factory default, which
#: keeps one-node clusters bit-identical to standalone runs.
WORKLOAD_NODE_SEED_STRIDE = 104_729


def register_workload(name: str, factory: Callable[[], Workload]) -> None:
    """Register a workload factory under ``name`` for use in specs."""
    WORKLOAD_FACTORIES[name] = factory


def register_governor(name: str, factory: Callable[[], object]) -> None:
    """Register an idle-governor factory under ``name`` for use in specs."""
    GOVERNOR_FACTORIES[name] = factory


#: Canonical cache-key type: a flat tuple of hashable scalars.
CacheKey = Tuple[object, ...]


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-parameterised simulation point.

    Attributes:
        workload: workload name (see :data:`WORKLOAD_FACTORIES`).
        config: named server configuration (see
            :func:`repro.server.config.named_configuration`).
        qps: offered aggregate request rate (queries per second).
        cores: core count.
        horizon: simulated seconds.
        seed: RNG seed; equal seeds give bit-identical results.
        governor: idle-governor name (see :data:`GOVERNOR_FACTORIES`).
        turbo: ``None`` keeps the configuration's turbo setting; True/False
            overrides it.
        snoops: whether background snoop traffic is simulated.
        nodes: cluster size; 1 simulates a single
            :class:`~repro.server.node.ServerNode` exactly as before.
        balancer: cluster load-balancer name (see
            :data:`~repro.cluster.balancer.BALANCER_FACTORIES`); with
            ``nodes=1`` the policy cannot affect results, so it is
            validated then canonicalised to ``"random"`` (one cache key
            per single-node point, not one per balancer name).
        fanout: leaf sub-requests per logical request, joined at the
            slowest leaf; must not exceed ``nodes``.
        hedge_ms: optional hedged-request delay in milliseconds — leaves
            still outstanding after this long are duplicated onto another
            node and the first answer wins.
        sketch_error: ``None`` (default) keeps exact latency percentiles;
            a float in (0, 1) switches latency tracking to the mergeable
            bounded-memory DDSketch backend with that relative-error
            guarantee — the fleet-scale knob (see
            :mod:`repro.simkit.sketch`).
        telemetry_hz: ``None`` (default) disables the telemetry probes; a
            positive rate samples simulated-time series at that many
            samples per simulated second into ``RunResult.timeline``
            (see :mod:`repro.obs.timeline`). Sampling never perturbs the
            simulation — every other observable is bit-identical probes
            on and off — but the result object differs (it carries the
            timeline), so the knob is part of the cache identity.
    """

    workload: str
    config: str
    qps: float
    cores: int = DEFAULT_CORES
    horizon: float = DEFAULT_HORIZON
    seed: int = DEFAULT_SEED
    governor: str = "menu"
    turbo: Optional[bool] = None
    snoops: bool = True
    nodes: int = 1
    balancer: str = "random"
    fanout: int = 1
    hedge_ms: Optional[float] = None
    sketch_error: Optional[float] = None
    telemetry_hz: Optional[float] = None

    def __post_init__(self) -> None:
        if self.workload not in WORKLOAD_FACTORIES:
            raise ConfigurationError(
                f"unknown workload {self.workload!r}; "
                f"choose from {sorted(WORKLOAD_FACTORIES)}"
            )
        if self.governor not in GOVERNOR_FACTORIES:
            raise ConfigurationError(
                f"unknown governor {self.governor!r}; "
                f"choose from {sorted(GOVERNOR_FACTORIES)}"
            )
        if self.balancer not in BALANCER_FACTORIES:
            raise ConfigurationError(
                f"unknown balancer {self.balancer!r}; "
                f"choose from {sorted(BALANCER_FACTORIES)}"
            )
        if self.qps <= 0:
            raise ConfigurationError(f"qps must be positive, got {self.qps}")
        if self.cores <= 0:
            raise ConfigurationError(f"cores must be positive, got {self.cores}")
        if self.horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {self.horizon}")
        if self.nodes <= 0:
            raise ConfigurationError(f"nodes must be positive, got {self.nodes}")
        if self.fanout <= 0:
            raise ConfigurationError(f"fanout must be positive, got {self.fanout}")
        if self.fanout > self.nodes:
            raise ConfigurationError(
                f"fanout {self.fanout} exceeds nodes {self.nodes}: leaves "
                "go to distinct servers"
            )
        if self.hedge_ms is not None and self.hedge_ms <= 0:
            raise ConfigurationError(
                f"hedge_ms must be positive, got {self.hedge_ms}"
            )
        if self.sketch_error is not None and not 0 < self.sketch_error < 1:
            raise ConfigurationError(
                f"sketch_error must be in (0, 1), got {self.sketch_error}"
            )
        if self.telemetry_hz is not None and self.telemetry_hz <= 0:
            raise ConfigurationError(
                f"telemetry_hz must be positive, got {self.telemetry_hz}"
            )
        # Canonicalise numeric types so 100000 and 100000.0 produce the
        # same frozen spec (and therefore the same cache key).
        object.__setattr__(self, "qps", float(self.qps))
        object.__setattr__(self, "horizon", float(self.horizon))
        object.__setattr__(self, "cores", int(self.cores))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "nodes", int(self.nodes))
        object.__setattr__(self, "fanout", int(self.fanout))
        if self.hedge_ms is not None:
            object.__setattr__(self, "hedge_ms", float(self.hedge_ms))
        if self.sketch_error is not None:
            object.__setattr__(self, "sketch_error", float(self.sketch_error))
        if self.telemetry_hz is not None:
            object.__setattr__(self, "telemetry_hz", float(self.telemetry_hz))
        if self.nodes == 1:
            # With one node every policy routes everything to node 0, so
            # the balancer cannot affect results: canonicalise it (after
            # validating the given name) so single-node points share one
            # cache key instead of re-simulating per balancer name — and
            # so a parent-only registered balancer name never travels to
            # a spawn worker on a spec that will never use it.
            object.__setattr__(self, "balancer", "random")

    # -- identity ----------------------------------------------------------
    @property
    def cache_key(self) -> CacheKey:
        """Canonical, hashable identity: equal keys mean equal results.

        ``sketch_error`` joins the key only when set, so every exact-mode
        key (the universal default before the sketch backend existed)
        keeps its original shape — stored results and golden labels stay
        addressable. ``telemetry_hz`` follows the same pattern (and a
        tagged one, since both are floats): the scalars of a telemetry
        run are bit-identical to the untracked run, but the stored result
        additionally carries the timeline, so the two are distinct store
        rows.
        """
        key = (
            self.workload, self.config, self.qps, self.cores, self.horizon,
            self.seed, self.governor, self.turbo, self.snoops,
            self.nodes, self.balancer, self.fanout, self.hedge_ms,
        )
        if self.sketch_error is not None:
            key = key + (self.sketch_error,)
        if self.telemetry_hz is not None:
            key = key + ("telemetry", self.telemetry_hz)
        return key

    @property
    def is_cluster(self) -> bool:
        """Whether this point needs the cluster path.

        ``nodes=1, fanout=1`` without hedging runs the original
        single-node path, byte-for-byte — the balancer name is then
        irrelevant (every policy routes everything to node 0).
        """
        return self.nodes > 1 or self.fanout > 1 or self.hedge_ms is not None

    @property
    def uses_partitioned_arrivals(self) -> bool:
        """Whether this cluster point runs as independent per-node sims.

        True for multi-node points with single-leaf requests, no hedging
        and a stateless balancer (``random``/``round_robin``): their
        nodes never interact, so :meth:`execute` partitions the arrival
        stream exactly (Poisson/Erlang thinning) and merges per-node
        results instead of paying the shared-simulator O(nodes)
        per-arrival balancer scan — and ``--shards`` can spread the same
        node ranges over a process pool bit-identically (see
        :mod:`repro.cluster.sharding`). Stateful balancers and coupled
        requests keep the shared-simulator :class:`Cluster` path.
        """
        from repro.cluster.sharding import is_shardable

        return is_shardable(self)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-safe); inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Raises:
            ConfigurationError: on missing or unknown keys.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown ScenarioSpec fields {sorted(unknown)}; known: {sorted(known)}"
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigurationError(f"incomplete ScenarioSpec dict: {exc}") from exc

    def with_(self, **overrides: Any) -> "ScenarioSpec":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    # -- materialisation ---------------------------------------------------
    def build_workload(self, node: int = 0) -> Workload:
        """Fresh workload instance (fresh RNG streams).

        ``node`` decorrelates cluster nodes: when the registered factory
        exposes an integer ``seed`` keyword (all built-ins do), node ``i``
        is built at ``default_seed + i * WORKLOAD_NODE_SEED_STRIDE``, so
        no two leaf servers draw identical service-time sequences — the
        correlation would otherwise cancel exactly the fan-out
        amplification a cluster exists to measure. Node 0 (and any
        zero-argument custom factory) uses the factory default.
        """
        factory = WORKLOAD_FACTORIES[self.workload]
        if node:
            try:
                seed_param = inspect.signature(factory).parameters.get("seed")
            except (TypeError, ValueError):  # builtins / C callables
                seed_param = None
            if seed_param is not None and isinstance(seed_param.default, int):
                # The zero-argument factory type is the registration
                # contract; built-ins additionally accept a seed keyword,
                # which the signature probe above just verified.
                seeded = cast(Callable[..., Workload], factory)
                return seeded(
                    seed=seed_param.default + WORKLOAD_NODE_SEED_STRIDE * node
                )
        return factory()

    def build_configuration(self) -> ServerConfiguration:
        """The named configuration, with the turbo override applied."""
        configuration = named_configuration(self.config)
        if self.turbo is not None and self.turbo != configuration.turbo_enabled:
            configuration = replace(configuration, turbo_enabled=self.turbo)
        return configuration

    def governor_factory(self) -> Callable[[], object]:
        return GOVERNOR_FACTORIES[self.governor]

    def execute(self) -> RunResult:
        """Run this scenario to completion (uncached; see SweepRunner)."""
        if self.is_cluster:
            if self.uses_partitioned_arrivals:
                from repro.cluster.sharding import execute_partitioned

                return execute_partitioned(self)

            from repro.cluster import Cluster

            cluster = Cluster(
                workload_factory=self.build_workload,
                configuration=self.build_configuration(),
                qps=self.qps,
                nodes=self.nodes,
                cores=self.cores,
                horizon=self.horizon,
                seed=self.seed,
                balancer=self.balancer,
                fanout=self.fanout,
                hedge_s=None if self.hedge_ms is None else self.hedge_ms / 1e3,
                snoops_enabled=self.snoops,
                governor_factory=self.governor_factory(),
                sketch_error=self.sketch_error,
                telemetry_hz=self.telemetry_hz,
            )
            return cluster.run()

        from repro.server.node import ServerNode

        node = ServerNode(
            workload=self.build_workload(),
            configuration=self.build_configuration(),
            qps=self.qps,
            cores=self.cores,
            horizon=self.horizon,
            seed=self.seed,
            snoops_enabled=self.snoops,
            governor_factory=self.governor_factory(),
            sketch_error=self.sketch_error,
            telemetry_hz=self.telemetry_hz,
        )
        return node.run()


class ScenarioGrid:
    """An ordered collection of :class:`ScenarioSpec` points.

    Deterministic order matters: runners return results positionally and
    memo caches warm in a predictable sequence.
    """

    def __init__(self, specs: Sequence[ScenarioSpec]):
        self._specs: Tuple[ScenarioSpec, ...] = tuple(specs)

    # -- builders ----------------------------------------------------------
    @classmethod
    def product(
        cls,
        workloads: Sequence[str] = ("memcached",),
        configs: Sequence[str] = ("baseline",),
        qps: Sequence[float] = (),
        cores: Sequence[int] = (DEFAULT_CORES,),
        horizons: Sequence[float] = (DEFAULT_HORIZON,),
        seeds: Sequence[int] = (DEFAULT_SEED,),
        governors: Sequence[str] = ("menu",),
        turbo: Optional[bool] = None,
        snoops: bool = True,
        nodes: Sequence[int] = (1,),
        balancers: Sequence[str] = ("random",),
        fanouts: Sequence[int] = (1,),
        hedge_ms: Optional[float] = None,
        sketch_error: Optional[float] = None,
        telemetry_hz: Optional[float] = None,
    ) -> "ScenarioGrid":
        """Cartesian product over the given axes.

        Iteration order is the nesting order of the arguments (workload
        outermost, fanout innermost), matching how the paper's figures
        sweep rate within configuration within workload. Cluster axes
        default to the single-node identity (``nodes=1, fanout=1``).

        Raises:
            ConfigurationError: if ``qps`` is empty.
        """
        if not qps:
            raise ConfigurationError("ScenarioGrid.product needs at least one qps")
        specs = [
            ScenarioSpec(
                workload=w, config=c, qps=q, cores=n, horizon=h, seed=s,
                governor=g, turbo=turbo, snoops=snoops,
                nodes=k, balancer=b, fanout=r, hedge_ms=hedge_ms,
                sketch_error=sketch_error, telemetry_hz=telemetry_hz,
            )
            for w in workloads
            for c in configs
            for q in qps
            for n in cores
            for h in horizons
            for s in seeds
            for g in governors
            for k in nodes
            for b in balancers
            for r in fanouts
        ]
        return cls(specs)

    @classmethod
    def from_dicts(cls, dicts: Sequence[Dict[str, Any]]) -> "ScenarioGrid":
        return cls([ScenarioSpec.from_dict(d) for d in dicts])

    def to_dicts(self) -> List[Dict[str, object]]:
        return [spec.to_dict() for spec in self._specs]

    # -- collection protocol ----------------------------------------------
    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[ScenarioSpec, Tuple[ScenarioSpec, ...]]:
        return self._specs[index]

    def __add__(self, other: "ScenarioGrid") -> "ScenarioGrid":
        return ScenarioGrid(self._specs + tuple(other))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ScenarioGrid({len(self._specs)} specs)"
