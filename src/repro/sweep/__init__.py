"""Scenario and sweep subsystem: declarative simulation points, run fast.

The paper's evaluation is a grid of (workload x configuration x rate)
points. This package makes that grid a first-class object:

- :mod:`repro.sweep.spec` — :class:`ScenarioSpec`, a frozen, serializable
  description of one simulation point with a canonical cache key, and
  :class:`ScenarioGrid`, cartesian-product sweep builders.
- :mod:`repro.sweep.runner` — :class:`SweepRunner`, which executes specs
  through pluggable executors (serial, or process-pool parallel) behind a
  shared memo cache, with progress/log hooks.

Every experiment module routes its simulation through this layer (via the
thin shims in :mod:`repro.experiments.common`), so a single
``SweepRunner`` configuration — e.g. ``python -m repro run --all --jobs 4``
— parallelises the whole artifact regeneration.
"""

from repro.sweep.spec import (
    GOVERNOR_FACTORIES,
    WORKLOAD_FACTORIES,
    ScenarioGrid,
    ScenarioSpec,
    register_governor,
    register_workload,
)
from repro.sweep.runner import (
    ProcessExecutor,
    SerialExecutor,
    SweepRunner,
    clear_shared_cache,
    configure_default_runner,
    default_runner,
    result_record,
    shared_cache_size,
)

__all__ = [
    "ScenarioSpec",
    "ScenarioGrid",
    "SweepRunner",
    "SerialExecutor",
    "ProcessExecutor",
    "default_runner",
    "configure_default_runner",
    "clear_shared_cache",
    "shared_cache_size",
    "result_record",
    "register_workload",
    "register_governor",
    "WORKLOAD_FACTORIES",
    "GOVERNOR_FACTORIES",
]
