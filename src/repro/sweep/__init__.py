"""Scenario and sweep subsystem: declarative simulation points, run fast.

The paper's evaluation is a grid of (workload x configuration x rate)
points. This package makes that grid a first-class object:

- :mod:`repro.sweep.spec` — :class:`ScenarioSpec`, a frozen, serializable
  description of one simulation point with a canonical cache key, and
  :class:`ScenarioGrid`, cartesian-product sweep builders.
- :mod:`repro.sweep.runner` — :class:`SweepRunner`, which executes specs
  through pluggable executors (serial, or streaming process-pool) behind
  a shared memo cache and an optional persistent
  :class:`~repro.store.ResultStore`, governed by a per-point
  :class:`FailurePolicy` (timeout/retries, raise/skip/record).
- :mod:`repro.sweep.progress` — the shared tty :class:`ProgressRenderer`
  threaded through ``repro run --jobs N`` and ``repro sweep``.

Every experiment module routes its simulation through this layer (via the
thin shims in :mod:`repro.experiments.common`), so a single
``SweepRunner`` configuration — e.g. ``python -m repro run --all --jobs 4``
— parallelises the whole artifact regeneration.
"""

from repro.sweep.spec import (
    GOVERNOR_FACTORIES,
    WORKLOAD_FACTORIES,
    ScenarioGrid,
    ScenarioSpec,
    register_balancer,
    register_governor,
    register_workload,
)
from repro.sweep.progress import ProgressRenderer
from repro.sweep.runner import (
    FailurePolicy,
    PointFailure,
    ProcessExecutor,
    SerialExecutor,
    ShardedExecutor,
    SweepRunner,
    clear_shared_cache,
    configure_default_runner,
    default_runner,
    failure_record,
    result_record,
    set_default_runner,
    shared_cache_size,
)

__all__ = [
    "ScenarioSpec",
    "ScenarioGrid",
    "SweepRunner",
    "SerialExecutor",
    "ShardedExecutor",
    "ProcessExecutor",
    "FailurePolicy",
    "PointFailure",
    "ProgressRenderer",
    "default_runner",
    "set_default_runner",
    "configure_default_runner",
    "clear_shared_cache",
    "shared_cache_size",
    "result_record",
    "failure_record",
    "register_workload",
    "register_governor",
    "register_balancer",
    "WORKLOAD_FACTORIES",
    "GOVERNOR_FACTORIES",
]
