"""One shared progress renderer for ``repro run --jobs N`` and ``sweep``.

Renders an in-place meter (``\\r``-rewritten bar) when the stream is a
tty, and plain one-line-per-point output when it is not (CI logs, pipes).
Implements the runner's ``ProgressHook`` protocol — ``(done, total,
spec)`` — so the same instance threads through every sweep a command
triggers, whether it came from an experiment module or a declarative
grid.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

from repro.sweep.spec import ScenarioSpec

#: Bar width in characters for the tty meter.
BAR_WIDTH = 24


class ProgressRenderer:
    """tty-aware progress meter usable as a runner ``progress`` hook.

    Args:
        label: prefix shown before the meter (e.g. ``"sweep"``).
        stream: output stream; defaults to ``sys.stderr`` so redirected
            stdout (tables, JSONL) stays clean.
    """

    def __init__(self, label: str = "sweep", stream: Optional[TextIO] = None):
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        isatty = getattr(self.stream, "isatty", None)
        self._tty = bool(isatty()) if callable(isatty) else False
        self._line_open = False
        self._last_width = 0

    def __call__(self, done: int, total: int, spec: ScenarioSpec) -> None:
        desc = f"{spec.workload}/{spec.config} @ {spec.qps / 1000:.0f}K QPS"
        if self._tty:
            filled = int(BAR_WIDTH * done / total) if total else BAR_WIDTH
            bar = "#" * filled + "-" * (BAR_WIDTH - filled)
            line = f"{self.label}: [{bar}] {done}/{total} {desc}"
            # Pad to blot out whatever remains of a longer previous line.
            padded = line.ljust(self._last_width)
            self._last_width = len(line)
            self.stream.write(f"\r{padded}")
            self._line_open = True
            if done >= total:
                self.stream.write("\n")
                self._line_open = False
                self._last_width = 0
        else:
            self.stream.write(f"{self.label}: [{done}/{total}] {desc}\n")
        self.stream.flush()

    def close(self) -> None:
        """Terminate a partially-drawn tty line (e.g. after an abort)."""
        if self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False
