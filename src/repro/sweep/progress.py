"""One shared progress renderer for ``repro run --jobs N`` and ``sweep``.

Renders an in-place meter (``\\r``-rewritten bar) when the stream is a
tty, and plain one-line-per-point output when it is not (CI logs, pipes).
Implements the runner's ``ProgressHook`` protocol — ``(done, total,
spec)`` — so the same instance threads through every sweep a command
triggers, whether it came from an experiment module or a declarative
grid. The meter shows throughput (points/sec) and an ETA once at least
one point has settled, plus live memo/store hit counts fed by the
runner via :meth:`ProgressRenderer.note_hits`.
"""

from __future__ import annotations

import sys
from time import monotonic
from typing import Optional, TextIO

from repro.sweep.spec import ScenarioSpec

#: Bar width in characters for the tty meter.
BAR_WIDTH = 24


class ProgressRenderer:
    """tty-aware progress meter usable as a runner ``progress`` hook.

    Args:
        label: prefix shown before the meter (e.g. ``"sweep"``).
        stream: output stream; defaults to ``sys.stderr`` so redirected
            stdout (tables, JSONL) stays clean.
    """

    def __init__(self, label: str = "sweep", stream: Optional[TextIO] = None):
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        isatty = getattr(self.stream, "isatty", None)
        self._tty = bool(isatty()) if callable(isatty) else False
        self._line_open = False
        self._last_width = 0
        # Set on the first progress callback; rate/ETA measure the span
        # from the first settled point to now (the first point's own
        # duration is unobservable from settle events alone).
        self._t0: Optional[float] = None
        self._memo_hits = 0
        self._store_hits = 0

    def note_hits(self, memo_hits: int, store_hits: int) -> None:
        """Runner hook: points answered by the memo cache / the store.

        Called by :class:`~repro.sweep.runner.SweepRunner` before the
        executor starts (duck-typed — plain-callable progress hooks
        simply never hear about hits). Counts accumulate across sweeps
        so a multi-sweep command (e.g. several experiments) shows the
        session total.
        """
        self._memo_hits += memo_hits
        self._store_hits += store_hits

    def _suffix(self, done: int, total: int, now: float) -> str:
        """Rate/ETA/hits tail of the meter line (may be empty)."""
        parts = []
        if self._t0 is not None and done > 1:
            elapsed = now - self._t0
            if elapsed > 0:
                # done-1 points settled over the observed span.
                rate = (done - 1) / elapsed
                parts.append(f"{rate:.1f} pts/s")
                if rate > 0 and total > done:
                    parts.append(f"ETA {(total - done) / rate:.0f}s")
        hits = []
        if self._memo_hits:
            hits.append(f"{self._memo_hits} memo")
        if self._store_hits:
            hits.append(f"{self._store_hits} store")
        if hits:
            parts.append("hits: " + " + ".join(hits))
        return " | " + ", ".join(parts) if parts else ""

    def __call__(self, done: int, total: int, spec: ScenarioSpec) -> None:
        now = monotonic()
        if self._t0 is None:
            self._t0 = now
        desc = f"{spec.workload}/{spec.config} @ {spec.qps / 1000:.0f}K QPS"
        suffix = self._suffix(done, total, now)
        if self._tty:
            filled = int(BAR_WIDTH * done / total) if total else BAR_WIDTH
            bar = "#" * filled + "-" * (BAR_WIDTH - filled)
            line = f"{self.label}: [{bar}] {done}/{total} {desc}{suffix}"
            # Pad to blot out whatever remains of a longer previous line.
            padded = line.ljust(self._last_width)
            self._last_width = len(line)
            self.stream.write(f"\r{padded}")
            self._line_open = True
            if done >= total:
                self.stream.write("\n")
                self._line_open = False
                self._last_width = 0
        else:
            self.stream.write(f"{self.label}: [{done}/{total}] {desc}{suffix}\n")
        self.stream.flush()

    def close(self) -> None:
        """Terminate a partially-drawn tty line (e.g. after an abort)."""
        if self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False
