"""Sweep execution: memoised runs through pluggable executors.

The runner separates *what* to simulate (:class:`ScenarioSpec`) from *how*
to execute it:

- :class:`SerialExecutor` runs points in order in the calling process;
- :class:`ProcessExecutor` fans points out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`.

Both feed one shared memo cache keyed on the spec's canonical cache key, so
experiments that revisit points (Fig 10 reuses Fig 9's baselines; Table 5
reuses Fig 8's sweep) simulate each point exactly once per process,
regardless of which runner instance asked first.

Simulations are deterministic functions of their spec, so serial and
parallel execution produce identical results — the process pool only
changes wall-clock time.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.server.metrics import RunResult
from repro.sweep.spec import CacheKey, ScenarioGrid, ScenarioSpec

#: ``progress(done, total, spec)`` — called after each point completes.
ProgressHook = Callable[[int, int, ScenarioSpec], None]

#: ``log(message)`` — called for coarse runner lifecycle messages.
LogHook = Callable[[str], None]

#: Process-wide memo cache shared by every runner (unless overridden).
_SHARED_CACHE: Dict[CacheKey, RunResult] = {}


def clear_shared_cache() -> None:
    """Drop all memoised runs (benchmarks measuring cold runs use this)."""
    _SHARED_CACHE.clear()


def shared_cache_size() -> int:
    return len(_SHARED_CACHE)


def _execute_spec_dict(data: Dict[str, object]) -> RunResult:
    """Worker-side entry point: rebuild the spec and run it.

    Takes a plain dict (not a ScenarioSpec) so the pickled task payload
    stays decoupled from the dataclass layout.
    """
    return ScenarioSpec.from_dict(data).execute()


class SerialExecutor:
    """Run points one at a time in the calling process."""

    name = "serial"

    def map_specs(
        self,
        specs: Sequence[ScenarioSpec],
        on_result: Optional[Callable[[int, ScenarioSpec, RunResult], None]] = None,
    ) -> List[RunResult]:
        results: List[RunResult] = []
        for i, spec in enumerate(specs):
            result = spec.execute()
            results.append(result)
            if on_result is not None:
                on_result(i, spec, result)
        return results


class ProcessExecutor:
    """Fan points out over a process pool.

    Results are identical to :class:`SerialExecutor` for the same specs:
    each simulation is a deterministic function of its spec, and results
    are returned positionally regardless of completion order.
    """

    name = "process"

    def __init__(self, jobs: int = 4):
        if jobs <= 0:
            raise ConfigurationError(f"jobs must be positive, got {jobs}")
        self.jobs = jobs

    def map_specs(
        self,
        specs: Sequence[ScenarioSpec],
        on_result: Optional[Callable[[int, ScenarioSpec, RunResult], None]] = None,
    ) -> List[RunResult]:
        if not specs:
            return []
        if len(specs) == 1:
            # Pool spin-up costs more than one point; run it inline.
            return SerialExecutor().map_specs(specs, on_result)
        results: List[Optional[RunResult]] = [None] * len(specs)
        workers = min(self.jobs, len(specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_spec_dict, spec.to_dict()): i
                for i, spec in enumerate(specs)
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    i = futures[future]
                    result = future.result()  # re-raises worker exceptions
                    results[i] = result
                    if on_result is not None:
                        on_result(i, specs[i], result)
        return results  # type: ignore[return-value]


ExecutorLike = Union[SerialExecutor, ProcessExecutor]

_EXECUTORS: Dict[str, Callable[..., ExecutorLike]] = {
    "serial": lambda jobs=None: SerialExecutor(),
    "process": lambda jobs=None: ProcessExecutor(jobs or 4),
}


def _make_executor(executor: Union[str, ExecutorLike], jobs: Optional[int]) -> ExecutorLike:
    if isinstance(executor, str):
        if executor not in _EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {executor!r}; choose from {sorted(_EXECUTORS)}"
            )
        return _EXECUTORS[executor](jobs=jobs)
    return executor


class SweepRunner:
    """Execute scenario specs with memoisation, progress and log hooks.

    Args:
        executor: ``"serial"``, ``"process"``, or an executor instance.
        jobs: worker count for the ``"process"`` executor.
        cache: memo dict keyed on :attr:`ScenarioSpec.cache_key`; defaults
            to the process-wide shared cache.
        progress: optional ``(done, total, spec)`` hook per completed point.
        log: optional sink for coarse lifecycle messages.
    """

    def __init__(
        self,
        executor: Union[str, ExecutorLike] = "serial",
        jobs: Optional[int] = None,
        cache: Optional[Dict[CacheKey, RunResult]] = None,
        progress: Optional[ProgressHook] = None,
        log: Optional[LogHook] = None,
    ):
        self.executor = _make_executor(executor, jobs)
        self.cache = _SHARED_CACHE if cache is None else cache
        self.progress = progress
        self.log = log

    # -- public API --------------------------------------------------------
    def run(self, spec: ScenarioSpec) -> RunResult:
        """One point, memoised."""
        return self.run_many([spec])[0]

    def run_many(self, specs: Sequence[ScenarioSpec]) -> List[RunResult]:
        """All points, memoised, order-preserving.

        Duplicate and already-cached specs are simulated at most once; the
        executor only ever sees the deduplicated cache misses.
        """
        specs = list(specs)
        misses: List[ScenarioSpec] = []
        seen: Dict[CacheKey, None] = {}
        for spec in specs:
            key = spec.cache_key
            if key not in self.cache and key not in seen:
                seen[key] = None
                misses.append(spec)

        total = len(misses)
        if self.log is not None and specs:
            self.log(
                f"sweep: {len(specs)} points ({total} to simulate, "
                f"{len(specs) - total} cached) via {self.executor.name}"
            )

        if misses:
            done_count = [0]

            def on_result(i: int, spec: ScenarioSpec, result: RunResult) -> None:
                self.cache[spec.cache_key] = result
                done_count[0] += 1
                if self.progress is not None:
                    self.progress(done_count[0], total, spec)

            self.executor.map_specs(misses, on_result)

        return [self.cache[spec.cache_key] for spec in specs]

    def run_grid(self, grid: ScenarioGrid) -> List[RunResult]:
        return self.run_many(list(grid))

    def clear_cache(self) -> None:
        self.cache.clear()


# -- default runner ----------------------------------------------------------
# The experiment shims (repro.experiments.common) route every point through
# this process-wide runner, so configuring it (e.g. from `--jobs N` on the
# CLI) changes how the whole artifact pipeline executes.

_default_runner = SweepRunner()


def default_runner() -> SweepRunner:
    """The process-wide runner used by the experiment shims."""
    return _default_runner


def configure_default_runner(
    executor: Union[str, ExecutorLike] = "serial",
    jobs: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
    log: Optional[LogHook] = None,
) -> SweepRunner:
    """Replace the process-wide runner (keeps the shared cache)."""
    global _default_runner
    _default_runner = SweepRunner(
        executor=executor, jobs=jobs, progress=progress, log=log
    )
    return _default_runner


def result_record(spec: ScenarioSpec, result: RunResult) -> Dict[str, object]:
    """Flat JSON-safe record of one point: spec fields + headline metrics."""
    record = spec.to_dict()
    record.update(
        completed=result.completed,
        achieved_qps=result.achieved_qps,
        avg_core_power=result.avg_core_power,
        package_power=result.package_power,
        avg_latency=result.avg_latency,
        p99_latency=result.tail_latency,
        avg_latency_e2e=result.avg_latency_e2e,
        p99_latency_e2e=result.tail_latency_e2e,
        turbo_grant_rate=result.turbo_grant_rate,
        snoops_served=result.snoops_served,
        residency={k: v for k, v in sorted(result.residency.items())},
    )
    return record
