"""Sweep execution: memoised, store-backed runs through pluggable executors.

The runner separates *what* to simulate (:class:`ScenarioSpec`) from *how*
to execute it:

- :class:`SerialExecutor` runs points in order in the calling process;
- :class:`ProcessExecutor` streams points through a
  :class:`~concurrent.futures.ProcessPoolExecutor` with a bounded
  submission window, so thousand-point grids hold O(jobs) task payloads
  in flight instead of the whole grid.

Both feed one shared memo cache keyed on the spec's canonical cache key, so
experiments that revisit points (Fig 10 reuses Fig 9's baselines; Table 5
reuses Fig 8's sweep) simulate each point exactly once per process,
regardless of which runner instance asked first. A runner may additionally
carry a persistent :class:`~repro.store.ResultStore`, layered *under* the
memo: misses consult the store before simulating, and fresh results are
written back, so repeated CLI invocations reuse runs across processes.

Individual failures are governed by a :class:`FailurePolicy` — per-point
timeout, retry count, and a ``raise``/``skip``/``record`` mode — so one bad
point no longer discards an entire sweep. Even in ``raise`` mode the
process executor cancels pending futures and delivers already-completed
results (they reach ``on_result`` and therefore the caches) before
propagating the error.

Simulations are deterministic functions of their spec, so serial and
parallel execution produce identical results — the process pool only
changes wall-clock time.
"""

from __future__ import annotations

import inspect
import multiprocessing
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from time import monotonic, sleep
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.cluster.balancer import (
    BALANCER_FACTORIES,
    IMPORT_TIME_BALANCER_FACTORIES,
)
from repro.errors import ConfigurationError, PointTimeoutError, SimulationError
from repro.server.metrics import RunResult
from repro.sweep.spec import (
    GOVERNOR_FACTORIES,
    IMPORT_TIME_GOVERNOR_FACTORIES,
    IMPORT_TIME_WORKLOAD_FACTORIES,
    WORKLOAD_FACTORIES,
    CacheKey,
    ScenarioGrid,
    ScenarioSpec,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.manifest import RunManifest

#: ``progress(done, total, spec)`` — called after each point settles
#: (success *or* terminal failure), so meters always reach ``total``.
ProgressHook = Callable[[int, int, ScenarioSpec], None]

#: ``log(message)`` — called for coarse runner lifecycle messages.
LogHook = Callable[[str], None]

#: Process-wide memo cache shared by every runner (unless overridden).
_SHARED_CACHE: Dict[CacheKey, RunResult] = {}

#: How many fresh results accumulate before a batched store write.
#: Large enough to amortise sqlite round-trips on thousand-point grids,
#: small enough that a hard kill mid-sweep loses at most one chunk.
STORE_FLUSH_CHUNK = 128


def clear_shared_cache() -> None:
    """Drop all memoised runs (benchmarks measuring cold runs use this)."""
    _SHARED_CACHE.clear()


def shared_cache_size() -> int:
    return len(_SHARED_CACHE)


def _execute_spec_dict(data: Dict[str, object]) -> RunResult:
    """Worker-side entry point: rebuild the spec and run it.

    Takes a plain dict (not a ScenarioSpec) so the pickled task payload
    stays decoupled from the dataclass layout.
    """
    return ScenarioSpec.from_dict(data).execute()


def _worker_ready() -> bool:
    """No-op task used to warm a pool before timeout deadlines start."""
    return True


# -- failure handling ---------------------------------------------------------

#: FailurePolicy modes.
RAISE = "raise"
SKIP = "skip"
RECORD = "record"
_MODES = (RAISE, SKIP, RECORD)


@dataclass(frozen=True)
class FailurePolicy:
    """What to do when one point fails.

    Attributes:
        mode: ``"raise"`` aborts the sweep on the first terminal failure
            (after cancelling pending work and delivering completed
            results); ``"skip"`` drops the point (its result slot becomes
            ``None``); ``"record"`` keeps a :class:`PointFailure` in the
            result slot.
        timeout: per-point wall-clock budget in seconds (process executor
            only), measured from submission to a free worker — points are
            never submitted while all workers are busy, so queue wait
            does not count. A timed-out point is treated as failed; what
            happens to its worker depends on the point's size (see
            :data:`KILL_THRESHOLD_REQUESTS`). Small points (at most the
            threshold in simulated requests) run on the shared pool, and
            a timed-out one is merely *abandoned*: it may keep running,
            occupying a pool slot and delaying final pool shutdown, but
            it cannot fail other points. Points above the threshold run
            on a dedicated killable process instead, which is
            ``terminate()``-d on timeout so a runaway simulation stops
            burning CPU immediately. The distributed executor ignores
            this field — there, runaway points are bounded by lease
            expiry and requeued on another worker.
        retries: how many times a failed/timed-out point is resubmitted
            before its failure becomes terminal.
    """

    mode: str = RAISE
    timeout: Optional[float] = None
    retries: int = 0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigurationError(
                f"unknown failure mode {self.mode!r}; choose from {list(_MODES)}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(f"timeout must be positive, got {self.timeout}")
        if self.retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {self.retries}")


@dataclass
class PointFailure:
    """Terminal failure of one point (returned under ``record`` mode)."""

    spec: ScenarioSpec
    error: str
    attempts: int


#: ``on_failure(index, spec, failure)`` — called for each terminal
#: (post-retry) failure under the ``skip``/``record`` modes.
FailureHook = Callable[[int, ScenarioSpec, PointFailure], None]


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _manifest_finished(
    manifest: Optional["RunManifest"],
    index: int,
    spec: ScenarioSpec,
    attempt: int,
    result: RunResult,
    wall_s: float,
) -> None:
    """Emit a point's ``finished`` manifest line (no-op without manifest)."""
    if manifest is None:
        return
    from repro.obs.manifest import spec_key

    manifest.emit(
        "finished",
        point=index,
        attempt=attempt,
        key=spec_key(spec),
        wall_s=round(wall_s, 6),
        events_per_s=(
            result.events_processed / wall_s if wall_s > 0 else None
        ),
    )


def _manifest_emit(
    manifest: Optional["RunManifest"],
    event: str,
    index: int,
    spec: ScenarioSpec,
    **fields: object,
) -> None:
    """Emit one point-scoped manifest line (no-op without manifest)."""
    if manifest is None:
        return
    from repro.obs.manifest import spec_key

    manifest.emit(event, point=index, key=spec_key(spec), **fields)


def find_unregistered(specs: Sequence[ScenarioSpec]):
    """Workload/governor names that worker processes would resolve wrongly.

    Returns ``(workloads, governors)`` sorted name lists: the names used
    by ``specs`` whose *current* factory differs from the import-time
    registries of :mod:`repro.sweep.spec` — either registered dynamically
    in this process only, or overriding a built-in name (workers would
    silently use the built-in factory instead).
    """
    workloads = sorted(
        name
        for name in {s.workload for s in specs}
        if WORKLOAD_FACTORIES.get(name) is not IMPORT_TIME_WORKLOAD_FACTORIES.get(name)
    )
    governors = sorted(
        name
        for name in {s.governor for s in specs}
        if GOVERNOR_FACTORIES.get(name) is not IMPORT_TIME_GOVERNOR_FACTORIES.get(name)
    )
    return workloads, governors


def find_unregistered_balancers(specs: Sequence[ScenarioSpec]) -> List[str]:
    """Balancer names worker processes would resolve wrongly.

    Companion to :func:`find_unregistered` (kept separate so that
    function's ``(workloads, governors)`` contract is unchanged). Every
    spec is checked — ``ScenarioSpec.__post_init__`` validates the
    balancer name in the worker regardless of node count, though
    single-node specs canonicalise theirs to the built-in default and so
    can never trip this.
    """
    return sorted(
        name
        for name in {s.balancer for s in specs}
        if BALANCER_FACTORIES.get(name) is not IMPORT_TIME_BALANCER_FACTORIES.get(name)
    )


def _check_worker_registries(
    specs: Sequence[ScenarioSpec], start_method: Optional[str] = None
) -> None:
    """Fail fast (and clearly) on parent-only registrations.

    With the ``fork`` start method workers inherit the parent's memory, so
    dynamically registered factories are visible. Under ``spawn`` or
    ``forkserver`` workers re-import :mod:`repro.sweep.spec` from scratch
    and would fail point-by-point with a baffling worker-side
    ``ConfigurationError("unknown governor ...")`` — catch that here,
    before anything is submitted, with an actionable message.
    """
    if start_method is None:
        start_method = multiprocessing.get_start_method()
    if start_method == "fork":
        return
    workloads, governors = find_unregistered(specs)
    balancers = find_unregistered_balancers(specs)
    if not workloads and not governors and not balancers:
        return
    parts = []
    if workloads:
        parts.append(f"workload(s) {workloads}")
    if governors:
        parts.append(f"governor(s) {governors}")
    if balancers:
        parts.append(f"balancer(s) {balancers}")
    raise ConfigurationError(
        f"{' and '.join(parts)} registered or overridden only in this "
        f"process: {start_method!r} worker processes re-import "
        "repro.sweep.spec and will not see factories registered after "
        "import. Register them at import time of a module workers import "
        "(e.g. inside repro), or use the serial executor."
    )


# -- executors ----------------------------------------------------------------

class SerialExecutor:
    """Run points one at a time in the calling process.

    Honours the failure policy's ``mode`` and ``retries``; ``timeout`` is
    not enforced (a single-process executor cannot interrupt a running
    simulation).
    """

    name = "serial"

    def __init__(self, policy: Optional[FailurePolicy] = None):
        self.policy = policy or FailurePolicy()

    def _execute(self, spec: ScenarioSpec) -> RunResult:
        """Run one point (subclass hook: ShardedExecutor overrides)."""
        return spec.execute()

    def map_specs(
        self,
        specs: Sequence[ScenarioSpec],
        on_result: Optional[Callable[[int, ScenarioSpec, RunResult], None]] = None,
        on_failure: Optional[FailureHook] = None,
        log: Optional[LogHook] = None,
        manifest: Optional["RunManifest"] = None,
    ) -> List[Optional[Union[RunResult, PointFailure]]]:
        results: List[Optional[Union[RunResult, PointFailure]]] = [None] * len(specs)
        for i, spec in enumerate(specs):
            attempts = 0
            while True:
                attempts += 1
                _manifest_emit(manifest, "claimed", i, spec, attempt=attempts)
                started = monotonic()
                try:
                    result = self._execute(spec)
                except Exception as exc:
                    if attempts <= self.policy.retries:
                        _manifest_emit(
                            manifest, "retry", i, spec,
                            attempt=attempts, error=_describe(exc),
                        )
                        continue
                    _manifest_emit(
                        manifest, "failed", i, spec,
                        attempt=attempts, error=_describe(exc),
                    )
                    if self.policy.mode == RAISE:
                        raise
                    failure = PointFailure(spec, _describe(exc), attempts)
                    if self.policy.mode == RECORD:
                        results[i] = failure
                    if on_failure is not None:
                        on_failure(i, spec, failure)
                    break
                else:
                    _manifest_finished(
                        manifest, i, spec, attempts, result,
                        monotonic() - started,
                    )
                    results[i] = result
                    if on_result is not None:
                        on_result(i, spec, result)
                    break
        return results


class ShardedExecutor(SerialExecutor):
    """Run points in order, sharding shardable cluster points.

    Each shardable cluster point (stateless balancer, single-leaf
    requests, no hedging — see
    :func:`repro.cluster.sharding.is_shardable`) is split into
    ``shards`` contiguous node ranges executed on a process pool and
    merged exactly, so its result is bit-identical to the serial run.
    Single-node points run inline. A *non-shardable cluster* point
    raises :class:`~repro.errors.ShardingError` with the reason —
    requesting shards for a stateful-balancer point is a configuration
    mistake to surface, not silently serialise — and the error then
    follows the failure policy's mode like any other point failure.

    Like :class:`SerialExecutor`, ``timeout`` is not enforced.
    """

    name = "sharded"

    def __init__(
        self,
        shards: int,
        jobs: Optional[int] = None,
        policy: Optional[FailurePolicy] = None,
    ):
        super().__init__(policy)
        if shards <= 0:
            raise ConfigurationError(f"shards must be positive, got {shards}")
        if jobs is not None and jobs <= 0:
            raise ConfigurationError(f"jobs must be positive, got {jobs}")
        self.shards = shards
        self.jobs = jobs

    def _execute(self, spec: ScenarioSpec) -> RunResult:
        from repro.cluster.sharding import check_shardable, run_sharded

        if spec.is_cluster:
            # Shardable points fan out; anything else (jsq/power_of_two,
            # fanout, hedging) raises the documented ShardingError here.
            check_shardable(spec)
            return run_sharded(spec, self.shards, jobs=self.jobs)
        return spec.execute()


#: Above roughly this many simulated requests (``qps * horizon *
#: fanout``), a timed-out point is too expensive to merely abandon: the
#: pool worker would keep burning CPU for the full simulation. Such
#: points run on a dedicated, terminate()-able process instead.
KILL_THRESHOLD_REQUESTS = 2_000_000.0


def _point_size(spec: ScenarioSpec) -> float:
    """Approximate simulated request count — the point's CPU weight."""
    return spec.qps * spec.horizon * spec.fanout


def _killable_point_entry(conn, spec_dict: Dict[str, object]) -> None:
    """Child entry of a killable point: run the spec, ship the outcome.

    Sends ``("ok", result)`` or ``("err", exception)`` over the pipe;
    an unpicklable exception degrades to its description. ``send`` may
    block on a large payload until the parent reads — that is fine, the
    parent polls the receiving end, and ``terminate()`` still works
    mid-send.
    """
    try:
        result = _execute_spec_dict(spec_dict)
    except BaseException as exc:  # ship, don't lose, worker-side failures
        try:
            conn.send(("err", exc))
        except Exception:
            conn.send(("err", SimulationError(_describe(exc))))
    else:
        conn.send(("ok", result))
    conn.close()


class _KillablePoint:
    """One big point on its own dedicated ``terminate()``-able process.

    ``concurrent.futures`` cannot kill a running worker, so a timed-out
    pool point is merely *abandoned* — its worker keeps simulating to
    completion. Cheap points make that a bounded nuisance; a
    million-request cluster point would squat a core for minutes. Points
    above :data:`KILL_THRESHOLD_REQUESTS` therefore bypass the pool and
    run here, where the timeout is enforced with a hard ``terminate()``.
    """

    __slots__ = ("index", "attempt", "spec", "deadline", "process", "_recv")

    def __init__(
        self,
        index: int,
        attempt: int,
        spec: ScenarioSpec,
        deadline: Optional[float],
    ):
        self.index = index
        self.attempt = attempt
        self.spec = spec
        self.deadline = deadline
        self._recv, child = multiprocessing.Pipe(duplex=False)
        self.process = multiprocessing.Process(
            target=_killable_point_entry,
            args=(child, spec.to_dict()),
            daemon=True,
        )
        self.process.start()
        child.close()

    def poll(self) -> Optional[Tuple[str, object]]:
        """``("ok", result)`` / ``("err", exc)``, or ``None`` if running.

        The pipe is checked before liveness: a child that finished and
        exited may still have its outcome buffered in the pipe.
        """
        if self._recv.poll():
            try:
                outcome = self._recv.recv()
            except (EOFError, OSError):
                outcome = None
            self.process.join()
            self._recv.close()
            if outcome is not None:
                return outcome
            return (
                "err",
                SimulationError(
                    "killable worker closed its pipe without a result "
                    f"(exit code {self.process.exitcode})"
                ),
            )
        if not self.process.is_alive():
            self.process.join()
            self._recv.close()
            return (
                "err",
                SimulationError(
                    "killable worker died before returning a result "
                    f"(exit code {self.process.exitcode})"
                ),
            )
        return None

    def kill(self) -> None:
        """Hard-stop the worker now (idempotent)."""
        self.process.terminate()
        self.process.join()
        self._recv.close()


class ProcessExecutor:
    """Stream points through a process pool with a bounded window.

    Results are identical to :class:`SerialExecutor` for the same specs:
    each simulation is a deterministic function of its spec, and results
    are returned positionally regardless of completion order.

    Submission is chunked ``imap``-style: at most ``jobs * chunk_factor``
    futures are outstanding at any moment, so a grid of thousands of
    points does not materialise thousands of pickled payloads (or their
    results) at once — completed results are delivered to ``on_result``
    as they finish and only the positional result list grows.

    Failure handling follows the :class:`FailurePolicy`: failed or
    timed-out points are retried up to ``retries`` times, then either
    abort the sweep (``raise`` — after cancelling pending futures and
    draining/delivering already-running ones), are dropped (``skip``), or
    yield a :class:`PointFailure` (``record``). With a timeout set,
    submission is capped to non-occupied workers, so a point's budget
    starts when a worker picks it up — never while queued. A timed-out
    *small* point's pool worker cannot be killed portably; it is
    abandoned (its eventual result is ignored), which occupies one pool
    slot and delays final pool shutdown but cannot fail other points.
    Points at or above ``kill_threshold`` simulated requests
    (``qps * horizon * fanout``) instead run on a dedicated
    :class:`_KillablePoint` process whose timeout is enforced with a
    hard ``terminate()``, so a runaway million-request point costs at
    most its budget of CPU.
    """

    name = "process"

    def __init__(
        self,
        jobs: int = 4,
        policy: Optional[FailurePolicy] = None,
        chunk_factor: int = 4,
        kill_threshold: Optional[float] = KILL_THRESHOLD_REQUESTS,
    ):
        if jobs <= 0:
            raise ConfigurationError(f"jobs must be positive, got {jobs}")
        if chunk_factor <= 0:
            raise ConfigurationError(
                f"chunk_factor must be positive, got {chunk_factor}"
            )
        if kill_threshold is not None and kill_threshold <= 0:
            raise ConfigurationError(
                f"kill_threshold must be positive, got {kill_threshold}"
            )
        self.jobs = jobs
        self.policy = policy or FailurePolicy()
        self.chunk_factor = chunk_factor
        #: ``None`` disables the dedicated-process path entirely.
        self.kill_threshold = kill_threshold

    def map_specs(
        self,
        specs: Sequence[ScenarioSpec],
        on_result: Optional[Callable[[int, ScenarioSpec, RunResult], None]] = None,
        on_failure: Optional[FailureHook] = None,
        log: Optional[LogHook] = None,
        manifest: Optional["RunManifest"] = None,
    ) -> List[Optional[Union[RunResult, PointFailure]]]:
        if not specs:
            return []
        if len(specs) == 1 and self.policy.timeout is None:
            # Pool spin-up costs more than one point; run it inline (no
            # workers, so no registry constraints). Not when a timeout is
            # set: only the pool path can enforce one.
            return SerialExecutor(self.policy).map_specs(
                specs, on_result, on_failure, log=log, manifest=manifest
            )
        _check_worker_registries(specs)

        policy = self.policy
        results: List[Optional[Union[RunResult, PointFailure]]] = [None] * len(specs)
        workers = min(self.jobs, len(specs))
        if workers < self.jobs and log is not None:
            # More workers than points is a configuration smell, not an
            # error: clamp and say so rather than spawning idle processes.
            log(
                f"sweep: clamped --jobs {self.jobs} to {workers} "
                f"(only {len(specs)} point(s) to simulate)"
            )
        queue = deque((i, 1) for i in range(len(specs)))  # (index, attempt)
        active: Dict[object, tuple] = {}  # future -> (index, attempt, deadline)
        first_error: List[Optional[BaseException]] = [None]
        # Timed-out futures we could not cancel: their workers are still
        # busy, so they reduce submission capacity until they finish.
        # (Future.running() flips as soon as an item enters the pool's
        # call queue, so it cannot tell queued from executing — instead
        # we never submit more work than there are non-occupied workers
        # when a timeout is set, which makes deadline-at-submission
        # equal deadline-at-start up to scheduler latency.)
        abandoned: set = set()
        # Big points on dedicated terminate()-able processes (see
        # _KillablePoint); they count against the submission window like
        # pool workers so total concurrency stays bounded at ``jobs``.
        killable: List[_KillablePoint] = []
        # Submission times, for per-point wall_s in the run manifest
        # (keyed by future or _KillablePoint).
        starts: Dict[object, float] = {}
        #: Poll cadence while waiting on an occupied worker to free up.
        poll_interval = 0.05

        def settle_failure(i: int, attempt: int, exc: BaseException) -> None:
            if first_error[0] is not None:
                return  # already aborting; drop secondary failures
            if attempt <= policy.retries:
                _manifest_emit(
                    manifest, "retry", i, specs[i],
                    attempt=attempt, error=_describe(exc),
                )
                queue.append((i, attempt + 1))
                return
            _manifest_emit(
                manifest, "failed", i, specs[i],
                attempt=attempt, error=_describe(exc),
            )
            if policy.mode == RAISE:
                first_error[0] = exc
                # Stop feeding the pool and cancel everything not yet
                # running; still-running futures are drained below so
                # their results reach on_result (and the caches).
                # Killable points are simply killed: unlike pool workers
                # they can be, and an aborting sweep has no use for
                # their eventual results.
                queue.clear()
                for future in list(active):
                    future.cancel()
                for kp in killable:
                    kp.kill()
                killable.clear()
                return
            failure = PointFailure(specs[i], _describe(exc), attempt)
            if policy.mode == RECORD:
                results[i] = failure
            if on_failure is not None:
                on_failure(i, specs[i], failure)

        with ProcessPoolExecutor(max_workers=workers) as pool:
            if policy.timeout is not None:
                # Warm every worker first: under spawn, interpreter
                # startup + package import can dwarf a short budget, and
                # that cost must not be billed to the first batch.
                wait([pool.submit(_worker_ready) for _ in range(workers)])
            while queue or active or killable:
                abandoned = {f for f in abandoned if not f.done()}
                if policy.timeout is not None:
                    # Submit only onto free workers so a point's clock
                    # (started at submission) never ticks in the queue.
                    window = max(0, workers - len(abandoned))
                else:
                    window = workers * self.chunk_factor
                while queue and len(active) + len(killable) < window:
                    i, attempt = queue.popleft()
                    deadline = (
                        monotonic() + policy.timeout
                        if policy.timeout is not None
                        else None
                    )
                    if (
                        policy.timeout is not None
                        and self.kill_threshold is not None
                        and _point_size(specs[i]) >= self.kill_threshold
                    ):
                        # Too big to merely abandon on timeout: dedicated
                        # process, enforced with terminate().
                        _manifest_emit(
                            manifest, "claimed", i, specs[i],
                            attempt=attempt, lane="killable",
                        )
                        kp = _KillablePoint(i, attempt, specs[i], deadline)
                        killable.append(kp)
                        starts[kp] = monotonic()
                        continue
                    _manifest_emit(
                        manifest, "claimed", i, specs[i],
                        attempt=attempt, lane="pool",
                    )
                    future = pool.submit(_execute_spec_dict, specs[i].to_dict())
                    active[future] = (i, attempt, deadline)
                    starts[future] = monotonic()
                if not active and not killable:
                    if queue:
                        # Every worker is occupied by an abandoned point;
                        # wait for one to free up, then resubmit.
                        wait(abandoned, timeout=poll_interval)
                        continue
                    break
                wait_timeout = None
                if policy.timeout is not None:
                    nearest = min(
                        [deadline for _, _, deadline in active.values()]
                        + [kp.deadline for kp in killable]
                    )
                    wait_timeout = max(0.0, nearest - monotonic())
                if killable:
                    # Killable completions can't wake wait(): poll them.
                    wait_timeout = (
                        poll_interval
                        if wait_timeout is None
                        else min(poll_interval, wait_timeout)
                    )
                if active:
                    done, _ = wait(
                        set(active),
                        timeout=wait_timeout,
                        return_when=FIRST_COMPLETED,
                    )
                else:
                    # Only killable points remain; wait() on an empty set
                    # returns immediately, which would busy-spin.
                    sleep(poll_interval if wait_timeout is None else wait_timeout)
                    done = set()
                for future in done:
                    i, attempt, _ = active.pop(future)
                    wall_s = monotonic() - starts.pop(future, monotonic())
                    try:
                        result = future.result()
                    except CancelledError:
                        continue
                    except Exception as exc:
                        settle_failure(i, attempt, exc)
                    else:
                        _manifest_finished(
                            manifest, i, specs[i], attempt, result, wall_s
                        )
                        results[i] = result
                        if on_result is not None:
                            on_result(i, specs[i], result)
                for kp in list(killable):
                    if kp not in killable:
                        continue  # killed by a raise-mode abort above
                    outcome = kp.poll()
                    if outcome is None:
                        continue
                    killable.remove(kp)
                    wall_s = monotonic() - starts.pop(kp, monotonic())
                    kind, payload = outcome
                    if kind == "ok":
                        _manifest_finished(
                            manifest, kp.index, specs[kp.index],
                            kp.attempt, payload, wall_s,
                        )
                        results[kp.index] = payload
                        if on_result is not None:
                            on_result(kp.index, specs[kp.index], payload)
                    else:
                        settle_failure(kp.index, kp.attempt, payload)
                if policy.timeout is not None:
                    now = monotonic()
                    overdue = [
                        future
                        for future, (_, _, deadline) in active.items()
                        if deadline is not None and deadline <= now
                    ]
                    for future in overdue:
                        i, attempt, _ = active.pop(future)
                        wall_s = monotonic() - starts.pop(future, monotonic())
                        if future.done() and not future.cancelled():
                            # Completed since the wait() snapshot: harvest
                            # the result rather than discarding real work.
                            try:
                                result = future.result()
                            except Exception as exc:
                                settle_failure(i, attempt, exc)
                            else:
                                _manifest_finished(
                                    manifest, i, specs[i], attempt,
                                    result, wall_s,
                                )
                                results[i] = result
                                if on_result is not None:
                                    on_result(i, specs[i], result)
                            continue
                        _manifest_emit(
                            manifest, "timeout", i, specs[i],
                            attempt=attempt, budget_s=policy.timeout,
                        )
                        if not future.cancel():
                            # Still running: the worker stays occupied
                            # until the simulation finishes on its own.
                            abandoned.add(future)
                            if log is not None:
                                # Name the cache key so the abandoned
                                # point is identifiable in the store.
                                log(
                                    "sweep: abandoned timed-out worker "
                                    f"still running spec {specs[i].cache_key} "
                                    f"(attempt {attempt}, budget {policy.timeout}s)"
                                )
                        settle_failure(
                            i,
                            attempt,
                            PointTimeoutError(
                                f"point exceeded {policy.timeout}s "
                                f"(spec {specs[i].cache_key})"
                            ),
                        )
                    for kp in list(killable):
                        if kp not in killable or kp.deadline > now:
                            continue
                        killable.remove(kp)
                        wall_s = monotonic() - starts.pop(kp, monotonic())
                        outcome = kp.poll()
                        if outcome is not None:
                            # Finished under the wire since the harvest
                            # pass: keep the real work.
                            kind, payload = outcome
                            if kind == "ok":
                                _manifest_finished(
                                    manifest, kp.index, specs[kp.index],
                                    kp.attempt, payload, wall_s,
                                )
                                results[kp.index] = payload
                                if on_result is not None:
                                    on_result(kp.index, specs[kp.index], payload)
                            else:
                                settle_failure(kp.index, kp.attempt, payload)
                            continue
                        _manifest_emit(
                            manifest, "killed", kp.index, kp.spec,
                            attempt=kp.attempt, budget_s=policy.timeout,
                        )
                        kp.kill()
                        if log is not None:
                            # Name the cache key so the killed point is
                            # identifiable in the store.
                            log(
                                "sweep: killed timed-out worker running "
                                f"spec {kp.spec.cache_key} "
                                f"(attempt {kp.attempt}, "
                                f"budget {policy.timeout}s)"
                            )
                        settle_failure(
                            kp.index,
                            kp.attempt,
                            PointTimeoutError(
                                f"point exceeded {policy.timeout}s "
                                f"(spec {kp.spec.cache_key}; worker killed)"
                            ),
                        )
        if first_error[0] is not None:
            raise first_error[0]
        return results


ExecutorLike = Union[SerialExecutor, ProcessExecutor]

_EXECUTORS: Dict[str, Callable[..., ExecutorLike]] = {
    "serial": lambda jobs=None, policy=None: SerialExecutor(policy),
    "process": lambda jobs=None, policy=None: ProcessExecutor(jobs or 4, policy),
}


def _make_executor(
    executor: Union[str, ExecutorLike],
    jobs: Optional[int],
    policy: Optional[FailurePolicy] = None,
) -> ExecutorLike:
    if isinstance(executor, str):
        if executor not in _EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {executor!r}; choose from {sorted(_EXECUTORS)}"
            )
        return _EXECUTORS[executor](jobs=jobs, policy=policy)
    return executor


class SweepRunner:
    """Execute scenario specs with memoisation, persistence and hooks.

    Args:
        executor: ``"serial"``, ``"process"``, or an executor instance.
        jobs: worker count for the ``"process"`` executor.
        cache: memo dict keyed on :attr:`ScenarioSpec.cache_key`; defaults
            to the process-wide shared cache.
        progress: optional ``(done, total, spec)`` hook per settled point.
        log: optional sink for coarse lifecycle messages.
        store: optional persistent :class:`~repro.store.ResultStore`
            consulted on memo misses and updated with fresh results.
        policy: :class:`FailurePolicy` for string-named executors
            (ignored when ``executor`` is an instance, which carries its
            own policy).
        manifest: optional :class:`~repro.obs.manifest.RunManifest` —
            every sweep appends point-lifecycle JSONL events (claimed/
            finished/memo_hit/store_hit/retry/timeout/killed) to it.
            Forwarded to executors whose ``map_specs`` accepts a
            ``manifest`` keyword (custom executors without it still
            work; they just contribute no per-point events).
    """

    def __init__(
        self,
        executor: Union[str, ExecutorLike] = "serial",
        jobs: Optional[int] = None,
        cache: Optional[Dict[CacheKey, RunResult]] = None,
        progress: Optional[ProgressHook] = None,
        log: Optional[LogHook] = None,
        store=None,
        policy: Optional[FailurePolicy] = None,
        manifest: Optional["RunManifest"] = None,
    ):
        self.executor = _make_executor(executor, jobs, policy)
        self.cache = _SHARED_CACHE if cache is None else cache
        self.progress = progress
        self.log = log
        self.store = store
        self.manifest = manifest
        #: Terminal failures from the most recent run_many, by cache key.
        self.last_failures: Dict[CacheKey, PointFailure] = {}

    # -- public API --------------------------------------------------------
    def run(self, spec: ScenarioSpec) -> RunResult:
        """One point, memoised."""
        return self.run_many([spec])[0]

    def run_many(
        self, specs: Sequence[ScenarioSpec]
    ) -> List[Optional[Union[RunResult, PointFailure]]]:
        """All points, memoised, order-preserving.

        Duplicate and already-cached specs are simulated at most once; the
        executor only ever sees the deduplicated misses that neither the
        memo cache nor the persistent store could answer.

        Under the default ``raise`` failure policy the returned list holds
        only :class:`RunResult` objects. Under ``skip`` a failed point's
        slot is ``None``; under ``record`` it is a :class:`PointFailure`
        (details for both are kept in :attr:`last_failures`).
        """
        specs = list(specs)
        self.last_failures = {}
        unique: Dict[CacheKey, ScenarioSpec] = {}
        first_index: Dict[CacheKey, int] = {}
        for i, spec in enumerate(specs):
            unique.setdefault(spec.cache_key, spec)
            first_index.setdefault(spec.cache_key, i)
        memo_hits = 0
        for key, spec in unique.items():
            if key in self.cache:
                memo_hits += 1
                _manifest_emit(
                    self.manifest, "memo_hit", first_index[key], spec
                )
        misses = [spec for key, spec in unique.items() if key not in self.cache]

        # The store is an accelerator, never a dependency: any I/O error
        # (full disk, locked/corrupt database) disables it for the rest of
        # this call and the sweep proceeds from simulation alone.
        store_ok = [self.store is not None]

        def store_call(op: Callable[[], object]) -> object:
            if not store_ok[0]:
                return None
            try:
                return op()
            except Exception as exc:  # sqlite3.Error, OSError, ...
                store_ok[0] = False
                if self.log is not None:
                    self.log(f"sweep: result store disabled ({exc})")
                return None

        store_hits = 0
        if store_ok[0] and misses:
            # Batch the lookup when the store supports it (one sqlite
            # connection for the whole grid instead of one per key).
            get_many = getattr(self.store, "get_many", None)
            if get_many is not None:
                found = store_call(
                    lambda: get_many([spec.cache_key for spec in misses])
                ) or {}
            else:
                found = {}
                for spec in misses:
                    stored = store_call(lambda: self.store.get(spec.cache_key))
                    if stored is not None:
                        found[spec.cache_key] = stored
            remaining: List[ScenarioSpec] = []
            for spec in misses:
                stored = found.get(spec.cache_key)
                if stored is None:
                    remaining.append(spec)
                else:
                    self.cache[spec.cache_key] = stored
                    store_hits += 1
                    _manifest_emit(
                        self.manifest, "store_hit",
                        first_index[spec.cache_key], spec,
                    )
            misses = remaining

        total = len(misses)
        if self.log is not None and specs:
            duplicates = len(specs) - len(unique)
            parts = [f"{total} to simulate", f"{memo_hits} memoised"]
            if self.store is not None:
                parts.append(f"{store_hits} from store")
            if duplicates:
                parts.append(f"{duplicates} duplicate")
            self.log(
                f"sweep: {len(specs)} points ({', '.join(parts)}) "
                f"via {self.executor.name}"
            )
        if self.manifest is not None and specs:
            self.manifest.emit(
                "sweep",
                points=len(specs),
                unique=len(unique),
                to_simulate=total,
                memo_hits=memo_hits,
                store_hits=store_hits,
                executor=getattr(
                    self.executor, "name", type(self.executor).__name__
                ),
            )
        note_hits = getattr(self.progress, "note_hits", None)
        if callable(note_hits):
            note_hits(memo_hits, store_hits)

        if misses:
            settled = [0]
            # Fresh results are written back in batched transactions
            # (single connection + executemany) instead of one sqlite
            # round-trip per point. Flushing every STORE_FLUSH_CHUNK
            # results bounds what a hard kill can lose on a long sweep,
            # and the final flush sits in a ``finally`` so even an
            # aborting ``raise`` policy persists the results it banked
            # before propagating.
            pending_writes: List[tuple] = []

            def flush_writes() -> None:
                if not pending_writes:
                    return
                put_many = getattr(self.store, "put_many", None)
                if put_many is not None:
                    put_many(pending_writes)
                else:  # store-like test doubles without the batched API
                    for key, result, spec in pending_writes:
                        self.store.put(key, result, spec=spec)
                pending_writes.clear()

            def on_result(i: int, spec: ScenarioSpec, result: RunResult) -> None:
                self.cache[spec.cache_key] = result
                if store_ok[0]:
                    pending_writes.append((spec.cache_key, result, spec))
                    if len(pending_writes) >= STORE_FLUSH_CHUNK:
                        store_call(flush_writes)
                settled[0] += 1
                if self.progress is not None:
                    self.progress(settled[0], total, spec)

            def on_failure(i: int, spec: ScenarioSpec, failure: PointFailure) -> None:
                self.last_failures[spec.cache_key] = failure
                if self.log is not None:
                    self.log(
                        f"sweep: point failed after {failure.attempts} attempt(s) "
                        f"({failure.error})"
                    )
                settled[0] += 1
                if self.progress is not None:
                    self.progress(settled[0], total, spec)

            extra: Dict[str, object] = {}
            if self.manifest is not None:
                # Forward the manifest only to executors that take it, so
                # custom map_specs implementations keep working unchanged.
                try:
                    params = inspect.signature(
                        self.executor.map_specs
                    ).parameters
                except (TypeError, ValueError):  # builtins / C callables
                    params = {}
                if "manifest" in params:
                    extra["manifest"] = self.manifest
            try:
                self.executor.map_specs(
                    misses, on_result, on_failure, log=self.log, **extra
                )
            finally:
                store_call(flush_writes)

        mode = getattr(self.executor, "policy", FailurePolicy()).mode
        out: List[Optional[Union[RunResult, PointFailure]]] = []
        for spec in specs:
            key = spec.cache_key
            if key in self.cache:
                out.append(self.cache[key])
            elif key in self.last_failures and mode == RECORD:
                out.append(self.last_failures[key])
            else:
                out.append(None)
        return out

    def run_grid(
        self, grid: ScenarioGrid
    ) -> List[Optional[Union[RunResult, PointFailure]]]:
        return self.run_many(list(grid))

    def clear_cache(self) -> None:
        self.cache.clear()


# -- default runner ----------------------------------------------------------
# The experiment shims (repro.experiments.common) route every point through
# this process-wide runner, so configuring it (e.g. from `--jobs N` on the
# CLI) changes how the whole artifact pipeline executes.

_default_runner = SweepRunner()


def default_runner() -> SweepRunner:
    """The process-wide runner used by the experiment shims."""
    return _default_runner


def set_default_runner(runner: SweepRunner) -> SweepRunner:
    """Swap in a pre-built process-wide runner (returns it).

    The CLI uses this to restore the previous runner after a command, so
    flags like ``--cache-dir`` never leak into later programmatic use.
    """
    global _default_runner
    _default_runner = runner
    return runner


def configure_default_runner(
    executor: Union[str, ExecutorLike] = "serial",
    jobs: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
    log: Optional[LogHook] = None,
    store=None,
    policy: Optional[FailurePolicy] = None,
    manifest: Optional["RunManifest"] = None,
) -> SweepRunner:
    """Replace the process-wide runner (keeps the shared cache)."""
    return set_default_runner(
        SweepRunner(
            executor=executor, jobs=jobs, progress=progress, log=log,
            store=store, policy=policy, manifest=manifest,
        )
    )


#: Emission levels for :func:`result_record`: ``headline`` keeps the
#: scalar metrics only; ``residency`` adds the per-C-state residency and
#: transition-rate dicts; ``perf`` adds the engine perf counters
#: (events processed, heap high-water mark, events per request) so sweep
#: consumers can normalise wall time per unit of simulation work.
EMIT_LEVELS = ("headline", "residency", "perf")


def result_record(
    spec: ScenarioSpec, result: RunResult, emit: str = "headline"
) -> Dict[str, object]:
    """Flat JSON-safe record of one point: spec fields + run metrics.

    Raises:
        ConfigurationError: on an unknown ``emit`` level.
    """
    if emit not in EMIT_LEVELS:
        raise ConfigurationError(
            f"unknown emit level {emit!r}; choose from {list(EMIT_LEVELS)}"
        )
    # The spec is authoritative for identity fields: a registered alias
    # (e.g. a custom workload whose object reports a different name) must
    # round-trip as the key the user swept, not the simulator's label.
    record = spec.to_dict()
    for key, value in result.to_record(detail=(emit == "residency")).items():
        record.setdefault(key, value)
    if emit == "perf":
        record["events_processed"] = result.events_processed
        record["peak_pending_events"] = result.peak_pending_events
        record["events_per_request"] = result.events_per_request
    return record


def failure_record(spec: ScenarioSpec, failure: Optional[PointFailure]) -> Dict[str, object]:
    """Flat JSON-safe record of one failed point: spec fields + error."""
    record = spec.to_dict()
    record["error"] = failure.error if failure is not None else "point failed"
    record["attempts"] = failure.attempts if failure is not None else 0
    return record
