"""Tests for the worker loop (repro.distrib.worker) run inline."""

import json

import pytest

from repro.distrib.queue import DONE, FAILED, LEASED, JobQueue
from repro.distrib.worker import default_worker_id, worker_main
from repro.store import ResultStore
from repro.sweep.spec import ScenarioSpec


def _spec(**overrides):
    base = dict(
        workload="memcached", config="baseline", qps=20_000,
        horizon=0.02, seed=7,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _events(queue, worker_id):
    path = queue.manifest_dir() / f"{worker_id}.jsonl"
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


@pytest.fixture
def queue(tmp_path):
    return JobQueue(str(tmp_path / "queue"))


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "store"))


def test_worker_drains_queue_and_commits_results(queue, store):
    specs = [_spec(seed=i, horizon=0.01) for i in range(3)]
    queue.enqueue(specs)
    rc = worker_main(
        str(queue.root), store_dir=str(store.root), worker_id="w-test",
        lease_s=30.0,
    )
    assert rc == 0
    assert queue.counts()[DONE] == 3
    for spec in specs:
        assert store.get(spec.cache_key) is not None
    events = _events(queue, "w-test")
    kinds = [e["event"] for e in events]
    assert kinds[0] == "worker_start"
    assert kinds[-1] == "worker_exit"
    assert kinds.count("claimed") == 3
    assert kinds.count("finished") == 3
    assert events[-1]["settled"] == 3


def test_store_hit_short_circuits_simulation(queue, store):
    spec = _spec(horizon=0.01)
    store.put(spec.cache_key, spec.execute(), spec=spec)
    queue.enqueue([spec])
    worker_main(
        str(queue.root), store_dir=str(store.root), worker_id="w-hit"
    )
    assert queue.counts()[DONE] == 1
    kinds = [e["event"] for e in _events(queue, "w-hit")]
    assert "store_hit" in kinds
    assert "finished" not in kinds  # never re-simulated


def test_failing_point_retries_then_goes_terminal(queue, store, failing_workload):
    spec = _spec(workload="explosive")
    queue.enqueue([spec])
    worker_main(
        str(queue.root), store_dir=str(store.root), worker_id="w-boom",
        retries=1, poll_s=0.05,
    )
    assert queue.counts()[FAILED] == 1
    (record,) = queue.failures().values()
    assert record["kind"] == "error"
    assert record["attempts"] == 2  # initial try + one retry
    assert "kaboom" in record["error"]
    assert store.get(spec.cache_key) is None
    kinds = [e["event"] for e in _events(queue, "w-boom")]
    assert kinds.count("retry") == 1
    assert kinds.count("failed") == 1


def test_live_lease_of_a_peer_is_respected(queue, store):
    specs = [_spec(seed=i, horizon=0.01) for i in range(2)]
    queue.enqueue(specs)
    held = queue.claim("peer", lease_s=300.0)  # a healthy peer is on it
    worker_main(
        str(queue.root), store_dir=str(store.root), worker_id="w-polite",
        max_points=1, poll_s=0.05,
    )
    counts = queue.counts()
    assert counts[LEASED] == 1 and counts[DONE] == 1
    assert queue.states()[held.key] == LEASED  # untouched
    kinds = [e["event"] for e in _events(queue, "w-polite")]
    assert kinds.count("finished") == 1


def test_default_worker_id_embeds_pid():
    import os

    assert str(os.getpid()) in default_worker_id()


def test_inline_worker_restores_sigterm_handler(queue, store):
    """An inline worker_main must not leak its SIGTERM handler into the
    host process — forked children would inherit it and turn
    ``terminate()`` into a no-op (the killable pool relies on it)."""
    import signal

    before = signal.getsignal(signal.SIGTERM)
    worker_main(str(queue.root), store_dir=str(store.root), worker_id="w-sig")
    assert signal.getsignal(signal.SIGTERM) is before
