"""Fault-injection e2e suite for the distributed executor.

The acceptance bar for ``repro.distrib``: every injected fault —
SIGKILL at each worker phase (claim / compute / commit), a frozen
heartbeat, dropped and corrupted queue rows, even losing the
coordinator itself — must converge to results **bit-identical** to a
serial run of the same specs, with every point settled exactly once
(one result or one structured failure record).

These tests spawn real OS processes; they are the slowest in the
suite but are the only place the crash-recovery machinery is exercised
end to end.
"""

import json
import multiprocessing
import os
import signal
import sys
import time

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from golden_specs import digest_result  # noqa: E402

from repro.distrib import DistributedExecutor, JobQueue
from repro.distrib.chaos import ChaosPlan, corrupt_rows, drop_rows
from repro.server.metrics import RunResult
from repro.store import ResultStore
from repro.sweep.runner import RECORD, FailurePolicy
from repro.sweep.spec import ScenarioSpec

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _grid(n, horizon=0.005):
    return [
        ScenarioSpec(
            workload="memcached", config="baseline", qps=20_000,
            horizon=horizon, seed=seed,
        )
        for seed in range(n)
    ]


def _serial_digests(specs):
    return {spec.cache_key: digest_result(spec.execute()) for spec in specs}


def _finished_counts(queue):
    """Map manifest ``finished`` events to per-point counts."""
    counts = {}
    for path in sorted(queue.manifest_dir().glob("*.jsonl")):
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                try:
                    event = json.loads(line)
                except ValueError:
                    continue  # torn tail of a SIGKILLed worker
                if event.get("event") == "finished":
                    key = event["key"]
                    counts[key] = counts.get(key, 0) + 1
    return counts


def test_sigkill_at_every_phase_converges_to_serial(tmp_path):
    """The headline chaos run from the issue: a 3-worker sweep of a
    50-point grid with one worker SIGKILLed at each phase (and one of
    them also heartbeat-frozen until it dies) terminates, and every
    point's result is bit-identical to a serial run."""
    specs = _grid(50)
    expected = _serial_digests(specs)
    executor = DistributedExecutor(
        str(tmp_path / "queue"),
        store_dir=str(tmp_path / "store"),
        jobs=3,
        policy=FailurePolicy(mode=RECORD, retries=3),
        lease_s=2.0,
        poll_s=0.1,
        max_wall_s=180.0,
        chaos_plans={
            0: ChaosPlan(kill_phase="claim", kill_at=2),
            1: ChaosPlan(kill_phase="compute", kill_at=2),
            2: ChaosPlan(
                kill_phase="commit", kill_at=2, freeze_heartbeat=True
            ),
        },
    )
    results = executor.map_specs(specs)
    assert len(results) == len(specs)
    for spec, result in zip(specs, results):
        assert isinstance(result, RunResult), f"{spec} -> {result!r}"
        assert digest_result(result) == expected[spec.cache_key]


def test_frozen_heartbeat_worker_does_not_corrupt_results(tmp_path):
    """A worker whose heartbeat freezes loses its lease mid-compute;
    the point is requeued onto a peer while the zombie keeps going.
    Both finish — determinism makes the double-compute harmless."""
    specs = _grid(4, horizon=2.0)  # slow points so leases lapse mid-run
    expected = _serial_digests(specs)
    executor = DistributedExecutor(
        str(tmp_path / "queue"),
        store_dir=str(tmp_path / "store"),
        jobs=2,
        policy=FailurePolicy(mode=RECORD, retries=5),
        lease_s=0.5,
        poll_s=0.1,
        max_wall_s=120.0,
        chaos_plans={0: ChaosPlan(freeze_heartbeat=True)},
    )
    results = executor.map_specs(specs)
    for spec, result in zip(specs, results):
        assert isinstance(result, RunResult)
        assert digest_result(result) == expected[spec.cache_key]


def test_dropped_and_corrupted_rows_are_repaired(tmp_path):
    """Rows torn out of (or scrambled inside) the queue database before
    the run starts are restored by the coordinator's repair pass."""
    specs = _grid(8)
    expected = _serial_digests(specs)
    queue = JobQueue(str(tmp_path / "queue"))
    queue.enqueue(specs)
    views = queue.jobs()
    assert drop_rows(queue, [views[0].key, views[1].key]) == 2
    assert corrupt_rows(queue, [views[2].key, views[3].key]) == 2
    executor = DistributedExecutor(
        str(tmp_path / "queue"),
        store_dir=str(tmp_path / "store"),
        jobs=2,
        policy=FailurePolicy(mode=RECORD, retries=3),
        lease_s=2.0,
        poll_s=0.1,
        max_wall_s=120.0,
    )
    results = executor.map_specs(specs)
    for spec, result in zip(specs, results):
        assert isinstance(result, RunResult)
        assert digest_result(result) == expected[spec.cache_key]


def _run_coordinator(queue_dir, store_dir, n):
    """Spawn target: run a distributed sweep to completion (or death)."""
    specs = _grid(n)
    executor = DistributedExecutor(
        queue_dir, store_dir=store_dir, jobs=2,
        policy=FailurePolicy(mode=RECORD, retries=2),
        lease_s=5.0, poll_s=0.1, max_wall_s=120.0,
    )
    executor.map_specs(specs)


def test_coordinator_killed_then_restarted_resumes(tmp_path):
    """SIGKILL the coordinator mid-sweep. Its workers (deliberately not
    daemons) keep draining the queue; a fresh coordinator over the same
    queue dir then settles everything from the store without
    recomputing a single point."""
    n = 16
    queue_dir = str(tmp_path / "queue")
    store_dir = str(tmp_path / "store")
    specs = _grid(n)
    store = ResultStore(store_dir)

    ctx = multiprocessing.get_context("spawn")
    proc = ctx.Process(
        target=_run_coordinator, args=(queue_dir, store_dir, n), daemon=False
    )
    proc.start()
    # Let it make real progress, then pull the plug without warning.
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if len(store.get_many([s.cache_key for s in specs])) >= 3:
            break
        time.sleep(0.1)
    else:
        pytest.fail("coordinator made no progress before the kill")
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(10.0)

    # Orphaned workers drain the queue on their own.
    queue = JobQueue(queue_dir)
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline and not queue.is_drained():
        time.sleep(0.2)
    assert queue.is_drained(), f"orphans never drained: {queue.counts()}"

    # A restarted coordinator over the same queue dir settles every
    # point from the store: nothing is recomputed, nothing runs twice.
    executor = DistributedExecutor(
        queue_dir, store_dir=store_dir, jobs=2,
        policy=FailurePolicy(mode=RECORD, retries=2),
        lease_s=5.0, poll_s=0.1, max_wall_s=60.0,
    )
    results = executor.map_specs(specs)
    expected = _serial_digests(specs)
    for spec, result in zip(specs, results):
        assert isinstance(result, RunResult)
        assert digest_result(result) == expected[spec.cache_key]
    finished = _finished_counts(queue)
    assert sum(finished.values()) == n, finished  # each point ran exactly once
    assert all(count == 1 for count in finished.values()), finished
