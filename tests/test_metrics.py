"""Tests for RunResult views and comparison helpers."""

import pytest

from repro.server.metrics import RunResult, compare_latency, compare_power
from repro.simkit.stats import PercentileTracker
from repro.units import US


def _result(power=1.0, latencies=(10 * US, 20 * US, 30 * US), completed=3,
            horizon=1.0, network=117 * US):
    tracker = PercentileTracker()
    tracker.add_many(latencies)
    return RunResult(
        config_name="test",
        workload_name="w",
        qps=1000.0,
        horizon=horizon,
        cores=10,
        residency={"C0": 0.3, "C1": 0.7},
        transitions_per_second={"C1": 100.0},
        avg_core_power=power,
        package_power=power * 10 + 38.0,
        server_latency=tracker,
        completed=completed,
        turbo_grant_rate=0.5,
        network_latency=network,
    )


class TestRunResultViews:
    def test_avg_latency(self):
        assert _result().avg_latency == pytest.approx(20 * US)

    def test_tail_at_least_avg(self):
        r = _result()
        assert r.tail_latency >= r.avg_latency

    def test_e2e_adds_network(self):
        r = _result()
        assert r.avg_latency_e2e == pytest.approx(r.avg_latency + 117 * US)
        assert r.tail_latency_e2e == pytest.approx(r.tail_latency + 117 * US)

    def test_achieved_qps(self):
        assert _result(completed=500, horizon=0.5).achieved_qps == 1000.0

    def test_achieved_qps_zero_horizon(self):
        assert _result(horizon=0).achieved_qps == 0.0

    def test_utilization_is_c0(self):
        assert _result().utilization == pytest.approx(0.3)

    def test_residency_of_missing_is_zero(self):
        assert _result().residency_of("C6") == 0.0

    def test_summary_contains_key_fields(self):
        text = _result().summary()
        assert "w/test" in text
        assert "p99" in text


class TestComparisons:
    def test_compare_power_fraction(self):
        base = _result(power=2.0)
        other = _result(power=1.0)
        assert compare_power(base, other) == pytest.approx(0.5)

    def test_compare_power_zero_base(self):
        assert compare_power(_result(power=0.0), _result(power=1.0)) == 0.0

    def test_compare_latency_avg(self):
        base = _result(latencies=(20 * US, 20 * US))
        other = _result(latencies=(10 * US, 10 * US))
        assert compare_latency(base, other) == pytest.approx(0.5)

    def test_compare_latency_tail(self):
        base = _result(latencies=(10 * US, 100 * US))
        other = _result(latencies=(10 * US, 50 * US))
        assert compare_latency(base, other, tail=True) > 0
