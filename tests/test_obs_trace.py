"""Chrome trace-event export: schema validity and span bookkeeping.

Schema rules asserted here (the interchange contract Perfetto and
``chrome://tracing`` parse):

* every event has ``name``/``ph``/``pid``/``tid``; non-metadata events
  have a numeric ``ts``;
* ``"X"`` complete events carry a non-negative ``dur``;
* async ``"b"``/``"e"`` events pair up per ``id`` (balanced, begin
  before end);
* the whole document survives a JSON round-trip.
"""

import dataclasses
import json

import pytest

from repro.obs.chrometrace import (
    LB_PID,
    export_chrome_trace,
    run_traced,
    source_lane,
    trace_to_chrome,
)
from repro.simkit.trace import TraceRecorder
from repro.sweep.spec import ScenarioSpec

VALID_PHASES = {"M", "X", "b", "e", "i", "n"}


def _spec(**overrides):
    base = dict(
        workload="memcached", config="baseline", qps=60_000,
        horizon=0.02, seed=42,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _chrome(spec, capacity=None):
    result, trace = run_traced(spec, capacity=capacity)
    return result, trace_to_chrome(
        trace.events, horizon=result.horizon, dropped=trace.dropped
    )


def _check_schema(document):
    events = document["traceEvents"]
    assert events, "empty trace"
    for event in events:
        assert event["ph"] in VALID_PHASES
        assert "name" in event and "pid" in event
        if event["ph"] != "M":
            assert isinstance(event["ts"], (int, float))
            assert event["ts"] >= 0
        if event["ph"] == "X":
            assert event["dur"] >= 0
        if event["ph"] in ("b", "e", "n"):
            assert "id" in event
    # JSON round-trip: the document is pure data.
    assert json.loads(json.dumps(document)) == document


class TestSourceLane:
    def test_lane_mapping(self):
        assert source_lane("core3") == (1, 3)
        assert source_lane("n0.core0") == (1, 0)
        assert source_lane("n4.core7") == (5, 7)
        assert source_lane("lb") == (LB_PID, 0)
        assert source_lane("n2.lb") == (LB_PID, 0)


class TestStandaloneTrace:
    def test_schema_valid(self):
        _, document = _chrome(_spec())
        _check_schema(document)

    def test_cstate_intervals_are_gap_free_per_core(self):
        result, document = _chrome(_spec())
        by_lane = {}
        for event in document["traceEvents"]:
            if event["ph"] == "X":
                by_lane.setdefault((event["pid"], event["tid"]), []).append(event)
        assert by_lane
        horizon_us = result.horizon * 1e6
        for lane, intervals in by_lane.items():
            intervals.sort(key=lambda e: e["ts"])
            for prev, nxt in zip(intervals, intervals[1:]):
                assert prev["ts"] + prev["dur"] == pytest.approx(nxt["ts"]), lane
            last = intervals[-1]
            assert last["ts"] + last["dur"] <= horizon_us * (1 + 1e-9)

    def test_idle_spans_alternate_with_c0(self):
        _, document = _chrome(_spec())
        lanes = {}
        for event in document["traceEvents"]:
            if event["ph"] == "X":
                lanes.setdefault((event["pid"], event["tid"]), []).append(event)
        names = {e["name"] for events in lanes.values() for e in events}
        assert "C0" in names
        assert names - {"C0"}, "no idle states recorded"
        for events in lanes.values():
            events.sort(key=lambda e: e["ts"])
            for prev, nxt in zip(events, events[1:]):
                # strict alternation: never two C0 (or two idle) in a row
                assert (prev["name"] == "C0") != (nxt["name"] == "C0")

    def test_request_spans_balance_and_match_completions(self):
        result, document = _chrome(_spec())
        begins = [e for e in document["traceEvents"]
                  if e["ph"] == "b" and e["name"] == "request"]
        ends = [e for e in document["traceEvents"]
                if e["ph"] == "e" and e["name"] == "request"]
        assert len(ends) == result.completed
        assert len(begins) >= len(ends)
        open_ids = {e["id"] for e in begins}
        for end in ends:
            assert end["id"] in open_ids

    def test_trace_does_not_change_results(self):
        spec = _spec()
        result, _ = run_traced(spec)
        plain = spec.execute()
        assert result.completed == plain.completed
        assert result.package_power == plain.package_power
        assert result.events_processed == plain.events_processed

    def test_dropped_events_surface_in_metadata(self):
        _, document = _chrome(_spec(), capacity=100)
        assert len(document["traceEvents"]) <= 200
        assert document["metadata"]["dropped_events"] > 0


class TestClusterTrace:
    def test_cluster_schema_valid(self):
        _, document = _chrome(_spec(nodes=3, qps=120_000, balancer="jsq"))
        _check_schema(document)
        pids = {e["pid"] for e in document["traceEvents"]}
        assert LB_PID in pids
        assert {1, 2, 3} <= pids

    def test_fanout_leaf_spans_balance(self):
        _, document = _chrome(_spec(nodes=4, fanout=2, qps=100_000))
        begun = sorted(e["id"] for e in document["traceEvents"]
                       if e["ph"] == "b" and e["name"] == "leaf")
        done = sorted(e["id"] for e in document["traceEvents"]
                      if e["ph"] == "e" and e["name"] == "leaf")
        assert begun and done
        assert set(done) <= set(begun)

    def test_hedge_marks_share_the_raced_leaf_span_id(self):
        _, document = _chrome(
            _spec(nodes=4, fanout=2, hedge_ms=0.02, qps=150_000, horizon=0.03)
        )
        hedges = [e for e in document["traceEvents"] if e["ph"] == "n"]
        assert hedges, "no hedges fired; lower hedge_ms"
        leaf_ids = {e["id"] for e in document["traceEvents"]
                    if e["ph"] == "b" and e["name"] == "leaf"}
        for hedge in hedges:
            assert hedge["id"] in leaf_ids
            assert "alt" in hedge["args"]

    def test_one_node_cluster_trace_matches_standalone(self):
        """A 1-node cluster's node-side events equal the standalone
        node's, modulo the ``n0.`` source prefix and the lb lane."""
        spec = _spec(qps=40_000)
        _, standalone = run_traced(spec)
        _, cluster = run_traced(dataclasses.replace(spec, nodes=1, balancer="round_robin"))

        def node_events(recorder, strip):
            out = []
            for event in recorder.events:
                source = event.source
                if source.endswith("lb"):
                    continue
                if strip and source.startswith("n0."):
                    source = source[len("n0."):]
                if event.kind in ("dispatch", "leaf", "leaf_done"):
                    continue
                out.append((round(event.time, 12), source, event.kind))
            return out

        assert node_events(cluster, strip=True) == node_events(standalone, strip=False)


class TestExportFile:
    def test_export_writes_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        meta = export_chrome_trace(_spec(), str(path))
        assert meta["recorded_events"] > 0
        assert meta["dropped_events"] == 0
        document = json.loads(path.read_text())
        _check_schema(document)
        assert document["displayTimeUnit"] == "ms"

    def test_export_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        export_chrome_trace(_spec(), str(a))
        export_chrome_trace(_spec(), str(b))
        assert a.read_bytes() == b.read_bytes()


class TestRecorderWarning:
    def test_drop_warning_emitted_once(self):
        messages = []
        recorder = TraceRecorder(capacity=2, log=messages.append)
        for i in range(5):
            recorder.record(0.1 * i, "core0", "arrival", i)
        assert recorder.dropped == 3
        assert len(messages) == 1
        assert "dropp" in messages[0]
