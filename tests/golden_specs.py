"""Shared definition of the golden bit-identity grid and digest.

The golden-digest tests (:mod:`tests.test_golden_digest`) pin the exact
``RunResult`` of a grid of scenarios across governors, rates, configs and
cluster axes. The digest string is built from ``float.hex()`` renderings,
so two results collide only if every observable is bit-identical.

Regenerate the pinned digests (only when an *intentional* behaviour
change lands) with::

    PYTHONPATH=src:tests python -m golden_specs > tests/golden_digests.json
"""

from __future__ import annotations

import hashlib
import json

from repro.server.metrics import RunResult
from repro.sweep.spec import ScenarioSpec

#: The pinned grid: governors x rates x configs x cluster axes, all at
#: short horizons so the whole grid replays in a few seconds.
GOLDEN_SPECS = [
    ScenarioSpec("memcached", "baseline", qps=20_000, horizon=0.05, seed=42),
    ScenarioSpec("memcached", "baseline", qps=150_000, horizon=0.04, seed=42),
    ScenarioSpec("memcached", "AW", qps=100_000, horizon=0.05, seed=7),
    ScenarioSpec("memcached", "baseline", qps=100_000, horizon=0.04, seed=42,
                 governor="c1_only"),
    ScenarioSpec("memcached", "baseline", qps=100_000, horizon=0.04, seed=42,
                 governor="oracle"),
    ScenarioSpec("memcached", "T_No_C6", qps=80_000, horizon=0.04, seed=42,
                 turbo=True),
    ScenarioSpec("mysql", "baseline", qps=30_000, horizon=0.05, seed=42),
    ScenarioSpec("kafka", "AW_No_C6", qps=50_000, horizon=0.05, seed=3,
                 snoops=False),
    ScenarioSpec("memcached", "baseline", qps=60_000, horizon=0.04, seed=42,
                 nodes=3, fanout=2, balancer="jsq"),
    ScenarioSpec("memcached", "AW", qps=40_000, horizon=0.04, seed=42,
                 nodes=2, balancer="round_robin", hedge_ms=1.0),
    ScenarioSpec("memcached", "baseline", qps=50_000, horizon=0.04, seed=11,
                 nodes=4, fanout=4, balancer="power_of_two"),
]


def digest_result(result: RunResult) -> str:
    """Canonical sha256 digest of every observable of a ``RunResult``.

    Floats are rendered with ``float.hex()`` (exact), so the digest
    changes iff any bit of any observable changes.
    """
    parts = [
        f"completed={result.completed}",
        f"samples={result.server_latency.count}",
    ]
    if result.server_latency.count:
        for p in (50, 95, 99, 99.9):
            parts.append(f"p{p}={result.server_latency.percentile(p).hex()}")
    parts.append(f"avg_core_power={result.avg_core_power.hex()}")
    parts.append(f"package_power={result.package_power.hex()}")
    for name, value in sorted(result.residency.items()):
        parts.append(f"residency:{name}={float(value).hex()}")
    for name, value in sorted(result.transitions_per_second.items()):
        parts.append(f"transitions:{name}={float(value).hex()}")
    parts.append(f"turbo_grant_rate={float(result.turbo_grant_rate).hex()}")
    parts.append(f"snoops_served={result.snoops_served}")
    parts.append(f"hedges_issued={result.hedges_issued}")
    # node_detail floats round-trip via repr (shortest-repr is injective
    # over doubles), so JSON is digest-safe here.
    parts.append(json.dumps(result.node_detail, sort_keys=True))
    return hashlib.sha256("\n".join(parts).encode("ascii")).hexdigest()


def spec_label(spec: ScenarioSpec) -> str:
    """Stable human-readable key for one golden spec."""
    return "|".join(str(field) for field in spec.cache_key)


def compute_digests() -> dict:
    return {spec_label(spec): digest_result(spec.execute()) for spec in GOLDEN_SPECS}


if __name__ == "__main__":
    print(json.dumps(compute_digests(), indent=2, sort_keys=True))
