"""Tests for the energy-proportionality analysis."""

import pytest

from repro.analytical.proportionality import analyze_curve, compare_curves
from repro.errors import ConfigurationError


class TestAnalyzeCurve:
    def test_perfectly_proportional_zero_gap(self):
        # power == utilisation * peak at every point (idle treated as the
        # first point: 0.4 at 10% of a 4 W peak is on the ideal line).
        curve = [(0.1, 0.4), (0.5, 2.0), (1.0, 4.0)]
        report = analyze_curve(curve)
        assert report.proportionality_gap == pytest.approx(0.0)
        assert report.dynamic_range == pytest.approx(10.0)

    def test_flat_curve_worst_gap(self):
        curve = [(0.0, 4.0), (0.5, 4.0), (1.0, 4.0)]
        report = analyze_curve(curve)
        assert report.dynamic_range == pytest.approx(1.0)
        # gaps: 1.0, 0.5, 0.0 -> mean 0.5
        assert report.proportionality_gap == pytest.approx(0.5)

    def test_lower_idle_power_wider_range(self):
        legacy = analyze_curve([(0.05, 1.4), (1.0, 4.0)])
        aw = analyze_curve([(0.05, 0.5), (1.0, 4.0)])
        assert aw.dynamic_range > legacy.dynamic_range
        assert aw.proportionality_gap < legacy.proportionality_gap

    def test_compare_curves_returns_both(self):
        base, aw = compare_curves(
            [(0.1, 1.5), (1.0, 4.0)], [(0.1, 0.6), (1.0, 4.0)]
        )
        assert base.dynamic_range < aw.dynamic_range

    def test_too_few_points_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_curve([(0.5, 2.0)])

    def test_non_monotone_utilisation_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_curve([(0.5, 2.0), (0.1, 1.0)])

    def test_non_positive_power_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_curve([(0.1, 0.0), (1.0, 4.0)])

    def test_out_of_range_utilisation_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_curve([(0.1, 1.0), (1.5, 4.0)])


class TestProportionalityExperiment:
    @pytest.fixture(scope="class")
    def comparison(self):
        from repro.experiments import proportionality

        return proportionality.run(rates_kqps=[10, 100, 400], horizon=0.08)

    def test_aw_widens_dynamic_range(self, comparison):
        assert (
            comparison.agilewatts.dynamic_range
            > comparison.baseline.dynamic_range
        )

    def test_aw_shrinks_gap(self, comparison):
        assert (
            comparison.agilewatts.proportionality_gap
            < comparison.baseline.proportionality_gap
        )

    def test_main_prints(self, capsys):
        from repro.experiments import proportionality

        points = proportionality.run(rates_kqps=[10, 400], horizon=0.05)
        assert points.baseline.dynamic_range > 1.0
        proportionality.main.__wrapped__ if hasattr(proportionality.main, "__wrapped__") else None
