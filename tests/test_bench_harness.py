"""Unit tests for the `repro bench` harness (no benchmark runs here)."""

import json
import os

import pytest

from repro import bench
from repro.errors import ConfigurationError


def _doc(results, suite="simulator"):
    return {
        "schema": bench.BENCH_SCHEMA,
        "suite": suite,
        "machine": {"python": "3.x", "implementation": "CPython",
                    "platform": "test"},
        "results": results,
    }


def _entry(min_s, mean_s=None):
    return {
        "min_s": min_s,
        "mean_s": mean_s if mean_s is not None else min_s * 1.1,
        "stddev_s": 0.001,
        "rounds": 3,
    }


class TestCompareResults:
    def test_within_tolerance_passes(self):
        base = _doc({"a": _entry(0.100)})
        cur = _doc({"a": _entry(0.110)})
        report = bench.compare_results(cur, base, tolerance=0.25)
        assert report["regressions"] == []
        assert report["improvements"] == []
        assert report["missing"] == []

    def test_regression_detected(self):
        base = _doc({"a": _entry(0.100)})
        cur = _doc({"a": _entry(0.140)})
        report = bench.compare_results(cur, base, tolerance=0.25)
        assert len(report["regressions"]) == 1
        entry = report["regressions"][0]
        assert entry["name"] == "a"
        assert entry["ratio"] == pytest.approx(1.4)

    def test_improvement_detected(self):
        base = _doc({"a": _entry(0.100)})
        cur = _doc({"a": _entry(0.050)})
        report = bench.compare_results(cur, base, tolerance=0.25)
        assert len(report["improvements"]) == 1
        assert report["regressions"] == []

    def test_missing_benchmark_reported_not_failed(self):
        base = _doc({"a": _entry(0.1), "b": _entry(0.2)})
        cur = _doc({"a": _entry(0.1)})
        report = bench.compare_results(cur, base, tolerance=0.25)
        assert report["missing"] == [{"name": "b"}]
        assert report["regressions"] == []

    def test_new_benchmark_surfaced_as_unbaselined(self):
        base = _doc({"a": _entry(0.1)})
        cur = _doc({"a": _entry(0.1), "new": _entry(9.9)})
        report = bench.compare_results(cur, base, tolerance=0.25)
        assert report["regressions"] == []
        assert report["unbaselined"] == [{"name": "new"}]
        assert "no baseline for new" in bench.render_report(report, 0.25)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            bench.compare_results(_doc({}), _doc({}), tolerance=-0.1)

    def test_degenerate_zero_baseline_skipped(self):
        base = _doc({"a": _entry(0.0)})
        cur = _doc({"a": _entry(1.0)})
        report = bench.compare_results(cur, base, tolerance=0.25)
        assert report["regressions"] == []

    def test_sub_millisecond_benchmarks_not_gated(self):
        """Noise-dominated microbenches report trajectory, never fail."""
        base = _doc({"micro": _entry(50e-6)})
        cur = _doc({"micro": _entry(500e-6)})  # 10x slower
        report = bench.compare_results(cur, base, tolerance=0.25)
        assert report["regressions"] == []
        assert len(report["ungated"]) == 1
        assert report["ungated"][0]["name"] == "micro"

    def test_gate_floor_boundary(self):
        base = _doc({"a": _entry(bench.GATE_FLOOR_SECONDS)})
        cur = _doc({"a": _entry(bench.GATE_FLOOR_SECONDS * 2)})
        report = bench.compare_results(cur, base, tolerance=0.25)
        assert len(report["regressions"]) == 1


class TestBenchFiles:
    def test_write_load_round_trip(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        doc = _doc({"a": _entry(0.123)})
        bench.write_bench(doc, path)
        assert bench.load_bench(path) == doc

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({"schema": 999}, handle)
        with pytest.raises(ConfigurationError):
            bench.load_bench(path)

    def test_load_rejects_unreadable(self, tmp_path):
        with pytest.raises(ConfigurationError):
            bench.load_bench(str(tmp_path / "absent.json"))

    def test_update_baseline_merges(self, tmp_path):
        path = str(tmp_path / "BENCH_baseline.json")
        bench.write_bench(_doc({"old": _entry(0.5), "both": _entry(0.9)}), path)
        merged = bench.update_baseline(
            _doc({"both": _entry(0.4), "new": _entry(0.2)}), path
        )
        assert set(merged["results"]) == {"old", "both", "new"}
        assert merged["results"]["both"]["min_s"] == 0.4
        on_disk = bench.load_bench(path)
        assert on_disk["results"] == merged["results"]

    def test_update_baseline_creates_file(self, tmp_path):
        path = str(tmp_path / "fresh.json")
        bench.update_baseline(_doc({"a": _entry(0.1)}), path)
        assert bench.load_bench(path)["results"]["a"]["min_s"] == 0.1


class TestSuitesAndRoot:
    def test_known_suites(self):
        assert {"simulator", "sweep", "cluster", "all"} <= set(bench.SUITES)

    def test_unknown_suite_rejected(self):
        with pytest.raises(ConfigurationError):
            bench.run_suite("nonexistent")

    def test_find_repo_root_locates_benchmarks(self):
        root = bench.find_repo_root()
        assert os.path.isdir(os.path.join(root, "benchmarks"))

    def test_committed_baseline_is_loadable(self):
        """The gate CI depends on is committed and well-formed."""
        root = bench.find_repo_root()
        doc = bench.load_bench(os.path.join(root, bench.BASELINE_RELPATH))
        assert "test_bench_server_node_100k_qps" in doc["results"]
        assert "test_bench_streaming_arrival_heap" in doc["results"]


class TestBenchCli:
    def test_unknown_suite_usage_error(self, capsys):
        from repro.cli import main

        assert main(["bench", "nope", "--no-compare"]) == 2
        assert "unknown bench suite" in capsys.readouterr().err

    def test_suite_and_quick_conflict(self, capsys):
        from repro.cli import main

        assert main(["bench", "cluster", "--quick"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_negative_tolerance_usage_error(self, capsys):
        from repro.cli import main

        assert main(["bench", "--quick", "--tolerance", "-1"]) == 2

    def test_render_report_clean(self):
        report = {
            "regressions": [], "improvements": [], "ungated": [],
            "missing": [], "unbaselined": [],
        }
        text = bench.render_report(report, 0.25)
        assert "within 25%" in text

    def test_load_rejects_non_dict_document(self, tmp_path):
        path = str(tmp_path / "list.json")
        with open(path, "w") as handle:
            json.dump([1, 2, 3], handle)
        with pytest.raises(ConfigurationError):
            bench.load_bench(path)
