"""Tests for the governor-ablation experiment."""

import pytest

from repro.experiments import governor_study


@pytest.fixture(scope="module")
def points():
    return governor_study.run(qps=80_000, horizon=0.08, seed=42)


def _get(points, config, governor):
    return next(
        p for p in points if p.config == config and p.governor == governor
    ).result


class TestGovernorStudy:
    def test_six_points(self, points):
        assert len(points) == 6

    def test_c1_only_burns_most_power_on_legacy(self, points):
        c1 = _get(points, "NT_Baseline", "c1_only")
        menu = _get(points, "NT_Baseline", "menu")
        assert c1.avg_core_power > menu.avg_core_power

    def test_c1_only_has_best_latency(self, points):
        # No deep-state wake penalties: the latency-optimal policy.
        c1 = _get(points, "NT_Baseline", "c1_only")
        menu = _get(points, "NT_Baseline", "menu")
        assert c1.avg_latency < menu.avg_latency

    def test_aw_with_menu_beats_oracle_on_legacy(self, points):
        # The paper's point: the hierarchy, not the predictor, is the
        # bottleneck — a perfect oracle on C1/C1E/C6 cannot match AW.
        aw_menu = _get(points, "NT_AW", "menu")
        legacy_oracle = _get(points, "NT_Baseline", "oracle")
        assert aw_menu.avg_core_power < legacy_oracle.avg_core_power

    def test_aw_power_below_legacy_for_every_governor(self, points):
        for governor in ("menu", "oracle", "c1_only"):
            aw = _get(points, "NT_AW", governor)
            legacy = _get(points, "NT_Baseline", governor)
            assert aw.avg_core_power < legacy.avg_core_power

    def test_c1_only_residency_is_shallowest_state(self, points):
        c1 = _get(points, "NT_Baseline", "c1_only")
        assert c1.residency_of("C1E") == 0.0
        assert c1.residency_of("C6") == 0.0
        aw_c1 = _get(points, "NT_AW", "c1_only")
        assert aw_c1.residency_of("C6A") > 0.0
        assert aw_c1.residency_of("C6AE") == 0.0

    def test_main_prints(self, capsys):
        governor_study.main()
        out = capsys.readouterr().out
        assert "Governor study" in out
        assert "oracle" in out
