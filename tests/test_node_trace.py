"""Tests for event tracing wired into the server node."""

import pytest

from repro.server import ServerNode, named_configuration
from repro.simkit.trace import TraceRecorder
from repro.workloads import memcached_workload


@pytest.fixture(scope="module")
def traced_run():
    trace = TraceRecorder()
    node = ServerNode(
        workload=memcached_workload(),
        configuration=named_configuration("NT_Baseline"),
        qps=50_000,
        horizon=0.05,
        seed=3,
        trace=trace,
    )
    result = node.run()
    return trace, result


class TestNodeTracing:
    def test_records_idle_entries_and_wakes(self, traced_run):
        trace, _ = traced_run
        counts = trace.counts_by_kind()
        assert counts.get("enter_idle", 0) > 0
        assert counts.get("wake", 0) > 0

    def test_wakes_roughly_match_entries(self, traced_run):
        # Every completed idle interval has one enter and one wake; a few
        # cores may end the run still idle.
        trace, result = traced_run
        counts = trace.counts_by_kind()
        assert abs(counts["enter_idle"] - counts["wake"]) <= result.cores

    def test_trace_states_match_catalog(self, traced_run):
        trace, _ = traced_run
        catalog_states = {"C1", "C1E", "C6"}
        for event in trace.filter(kind="enter_idle"):
            assert event.payload in catalog_states

    def test_snoop_events_recorded(self, traced_run):
        trace, result = traced_run
        assert len(trace.filter(kind="snoop")) == result.snoops_served

    def test_events_time_ordered(self, traced_run):
        trace, _ = traced_run
        times = [event.time for event in trace]
        assert times == sorted(times)

    def test_per_core_filtering(self, traced_run):
        trace, result = traced_run
        total = sum(
            len(trace.filter(source=f"core{i}", kind="wake"))
            for i in range(result.cores)
        )
        assert total == trace.counts_by_kind()["wake"]

    def test_default_node_does_not_trace(self):
        node = ServerNode(
            workload=memcached_workload(),
            configuration=named_configuration("NT_Baseline"),
            qps=20_000,
            horizon=0.02,
            seed=4,
        )
        node.run()
        assert len(node.trace) == 0  # NULL_TRACE stays empty

    def test_trace_wake_durations_consistent_with_governor(self, traced_run):
        # Idle intervals observed in the trace must be positive.
        trace, _ = traced_run
        enters = trace.filter(source="core0", kind="enter_idle")
        wakes = trace.filter(source="core0", kind="wake")
        for enter, wake in zip(enters, wakes):
            assert wake.time >= enter.time
