"""Tests for the transition-latency models (Sec 3, Sec 5.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency import (
    C6_FLOW_FREQUENCY_HZ,
    C6ALatencyModel,
    C6LatencyModel,
    CacheFlushModel,
    pll_relock_saving,
    transition_speedup,
)
from repro.errors import PowerModelError
from repro.units import MHZ, US


class TestCacheFlushModel:
    def test_paper_operating_point(self):
        # Sec 3: flushing a 50% dirty cache at 800 MHz takes ~75 us.
        flush = CacheFlushModel()
        t = flush.flush_time(0.5, 800 * MHZ)
        assert t == pytest.approx(75 * US, rel=0.05)

    def test_clean_cache_flushes_faster(self):
        flush = CacheFlushModel()
        assert flush.flush_time(0.0, 800 * MHZ) < flush.flush_time(0.5, 800 * MHZ)

    def test_higher_frequency_flushes_faster(self):
        flush = CacheFlushModel()
        assert flush.flush_time(0.5, 2.2e9) < flush.flush_time(0.5, 800 * MHZ)

    def test_monotone_in_dirtiness(self):
        flush = CacheFlushModel()
        times = [flush.flush_time(d / 10, 800 * MHZ) for d in range(11)]
        assert times == sorted(times)

    def test_bad_dirty_fraction_rejected(self):
        with pytest.raises(PowerModelError):
            CacheFlushModel().flush_time(1.5, 1e9)

    def test_bad_frequency_rejected(self):
        with pytest.raises(PowerModelError):
            CacheFlushModel().flush_time(0.5, 0.0)

    def test_line_count(self):
        flush = CacheFlushModel(capacity_bytes=64 * 1024, line_bytes=64)
        assert flush.lines == 1024

    @given(dirty=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_flush_time_linear_in_dirty(self, dirty):
        flush = CacheFlushModel()
        base = flush.flush_time(0.0, 1e9)
        full = flush.flush_time(1.0, 1e9)
        t = flush.flush_time(dirty, 1e9)
        assert t == pytest.approx(base + (full - base) * dirty, rel=1e-6)


class TestC6LatencyModel:
    def test_entry_near_87us(self):
        # Sec 3: ~87 us overall C6 entry.
        assert C6LatencyModel().entry_latency == pytest.approx(87 * US, rel=0.02)

    def test_context_save_near_9us(self):
        assert C6LatencyModel().context_save_time() == pytest.approx(9 * US, rel=0.02)

    def test_exit_is_30us(self):
        # ~10 us hardware wake + ~20 us state/ucode restore.
        assert C6LatencyModel().exit_latency == pytest.approx(30 * US)

    def test_round_trip_matches_table1(self):
        assert C6LatencyModel().transition_time == pytest.approx(133 * US, rel=0.01)

    def test_flow_frequency_is_800mhz(self):
        assert C6_FLOW_FREQUENCY_HZ == pytest.approx(800e6)

    def test_breakdown_sums_to_total(self):
        model = C6LatencyModel()
        assert sum(model.breakdown().values()) == pytest.approx(model.transition_time)

    def test_breakdown_flush_dominates_entry(self):
        b = C6LatencyModel().breakdown()
        assert b["flush_l1_l2"] > b["context_save"] + b["entry_control"]

    def test_dirty_fraction_drives_entry(self):
        clean = C6LatencyModel(dirty_fraction=0.0)
        dirty = C6LatencyModel(dirty_fraction=1.0)
        assert dirty.entry_latency > clean.entry_latency


class TestC6ALatencyModel:
    def test_round_trip_under_100ns(self):
        assert C6ALatencyModel().transition_time < 100e-9

    def test_breakdown_has_six_steps(self):
        assert len(C6ALatencyModel().breakdown()) == 6

    def test_breakdown_sums_to_round_trip(self):
        model = C6ALatencyModel()
        assert sum(model.breakdown().values()) == pytest.approx(model.transition_time)


class TestSpeedup:
    def test_three_orders_of_magnitude(self):
        # Paper headline: up to ~900x; ours lands in the same band.
        speedup = transition_speedup()
        assert speedup >= 500
        assert speedup <= 3000

    def test_pll_relock_saving_is_microseconds(self):
        assert 1 * US <= pll_relock_saving() <= 10 * US
