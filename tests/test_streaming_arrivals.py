"""Streaming arrival generation: determinism and heap-size bounds.

The server node schedules arrivals lazily (each arrival event chains the
next) instead of pre-scheduling the whole open-loop schedule. These tests
pin the two properties that refactor promised: results stay bit-identical
to eager pre-scheduling for the same seed, and the event heap stays
O(cores + in-flight) instead of O(qps * horizon).
"""

import pytest

from repro.server import ServerNode, named_configuration
from repro.workloads import memcached_workload
from repro.workloads.loadgen import LoadGenerator


def _node(qps=50_000, horizon=0.05, seed=7, config="baseline", **kw):
    return ServerNode(
        memcached_workload(), named_configuration(config),
        qps=qps, horizon=horizon, seed=seed, **kw,
    )


def _eager_schedule_arrivals(node):
    """The pre-refactor behaviour: push every arrival up front."""
    for t in node._loadgen.arrivals(node.horizon):
        node.sim.schedule_at(t, lambda t=t: node._on_arrival(t), label="arrival")


class TestStreamingDeterminism:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_bit_identical_to_eager_baseline(self, seed):
        streaming = _node(seed=seed).run()
        eager_node = _node(seed=seed)
        eager_node._schedule_arrivals = lambda: _eager_schedule_arrivals(eager_node)
        eager = eager_node.run()
        assert streaming.completed == eager.completed
        assert streaming.avg_core_power == eager.avg_core_power
        assert streaming.residency == eager.residency
        assert streaming.server_latency.p99 == eager.server_latency.p99
        assert streaming.transitions_per_second == eager.transitions_per_second
        assert streaming.snoops_served == eager.snoops_served

    def test_repeat_runs_identical(self):
        a = _node(seed=11).run()
        b = _node(seed=11).run()
        assert a.avg_core_power == b.avg_core_power
        assert a.residency == b.residency

    def test_all_arrivals_processed(self):
        node = _node(qps=20_000, horizon=0.05, seed=3)
        expected = sum(1 for _ in type(node._loadgen)(20_000, seed=3 + 1).arrivals(0.05))
        result = node.run()
        # Every generated arrival either completed or is still queued at
        # the horizon; none were dropped by the streaming chain.
        queued = sum(len(rt.queue) for rt in node._runtimes)
        in_service = sum(1 for rt in node._runtimes if rt.busy)
        assert result.completed + queued + in_service == expected


class TestHorizonGuard:
    def test_arrival_at_or_past_horizon_never_fires(self):
        class AtHorizon(LoadGenerator):
            def __init__(self, horizon):
                self._h = horizon

            @property
            def rate_qps(self):
                return 1.0

            def arrivals(self, horizon):
                # Misbehaving generator: boundary and out-of-window times.
                yield self._h / 2
                yield self._h
                yield self._h * 2

        node = _node(qps=1_000, horizon=0.01, seed=1)
        node._loadgen = AtHorizon(node.horizon)
        result = node.run()
        # Only the in-window arrival dispatched; the t >= horizon ones were
        # dropped by the guard rather than firing past the window.
        assert result.completed == 1
        assert node.sim.now == node.horizon

    def test_in_window_arrivals_survive_out_of_window_yields(self):
        class Mixed(LoadGenerator):
            def __init__(self, horizon):
                self._h = horizon

            @property
            def rate_qps(self):
                return 1.0

            def arrivals(self, horizon):
                # An out-of-window yield mid-stream must not truncate the
                # rest of the schedule.
                yield self._h / 4
                yield self._h * 2
                yield self._h / 2

        node = _node(qps=1_000, horizon=0.01, seed=1)
        node._loadgen = Mixed(node.horizon)
        result = node.run()
        assert result.completed == 2


class TestHeapBounds:
    def test_peak_pending_reduced_10x_at_100kqps(self):
        # Acceptance criterion: 100 KQPS x 0.4 s would eagerly pin
        # ~40 000 arrival events; streaming must stay >= 10x below that.
        node = _node(qps=100_000, horizon=0.4, seed=1)
        result = node.run()
        eager_heap = 100_000 * 0.4
        assert result.completed > 30_000  # the run actually happened
        assert node.sim.peak_pending_events <= eager_heap / 10

    def test_peak_scales_with_cores_not_load(self):
        small = _node(qps=200_000, horizon=0.02, seed=2)
        small.run()
        # 4000 offered requests; the heap should stay in the dozens.
        assert small.sim.peak_pending_events < 100
