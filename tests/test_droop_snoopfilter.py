"""Tests for the voltage-droop/in-rush and snoop-filter models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, PowerModelError
from repro.power.droop import (
    AVX_REFERENCE_WINDOW,
    InRushModel,
    IRDropModel,
    single_gate_wake_unsafe,
)
from repro.power.powergate import PowerGate, make_ufpg_zones
from repro.uarch.snoopfilter import SnoopFilterModel, calibrated_rate_check
from repro.units import NS


class TestIRDropModel:
    def test_default_penalty_about_1pct(self):
        # Reproduces the paper's (and [93]'s) < 1% fmax loss.
        model = IRDropModel()
        assert model.frequency_penalty == pytest.approx(0.01, abs=0.002)

    def test_extra_droop_is_ir(self):
        model = IRDropModel(gate_resistance_mohm=2.0, peak_current_amps=5.0)
        assert model.extra_droop_volts == pytest.approx(0.010)

    def test_better_fabric_smaller_penalty(self):
        good = IRDropModel(gate_resistance_mohm=0.5)
        bad = IRDropModel(gate_resistance_mohm=2.0)
        assert good.frequency_penalty < bad.frequency_penalty

    def test_invalid_params_rejected(self):
        with pytest.raises(PowerModelError):
            IRDropModel(gate_resistance_mohm=-1.0)
        with pytest.raises(PowerModelError):
            IRDropModel(peak_current_amps=0.0)

    @given(r=st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=50)
    def test_penalty_monotone_in_resistance(self, r):
        base = IRDropModel(gate_resistance_mohm=r)
        worse = IRDropModel(gate_resistance_mohm=r + 0.5)
        assert worse.frequency_penalty > base.frequency_penalty


class TestInRushModel:
    def test_avx_reference_is_exactly_budget(self):
        gate = PowerGate("avx", relative_area=1.0, stagger_time=AVX_REFERENCE_WINDOW)
        assert InRushModel().spike_ratio(gate) == pytest.approx(1.0)

    def test_five_zone_plan_is_safe(self):
        # The Sec 5.3 plan: 0.9 AVX-equivalents over 13.5 ns each = the
        # qualified charge rate.
        assert InRushModel().zone_plan_safe(make_ufpg_zones())

    def test_monolithic_wake_unsafe(self):
        assert single_gate_wake_unsafe()

    def test_worst_zone_ratio(self):
        zones = make_ufpg_zones()
        assert InRushModel().worst_zone_ratio(zones) == pytest.approx(1.0, abs=0.01)

    def test_faster_stagger_raises_spike(self):
        slow = PowerGate("z", relative_area=0.9, stagger_time=13.5 * NS)
        fast = PowerGate("z", relative_area=0.9, stagger_time=5 * NS)
        model = InRushModel()
        assert model.spike_ratio(fast) > model.spike_ratio(slow)

    def test_empty_plan_rejected(self):
        with pytest.raises(PowerModelError):
            InRushModel().zone_plan_safe([])

    def test_zero_window_rejected(self):
        gate = PowerGate("z", relative_area=0.5, stagger_time=0.0)
        with pytest.raises(PowerModelError):
            InRushModel().spike_ratio(gate)

    @given(zones=st.integers(min_value=5, max_value=40))
    @settings(max_examples=30)
    def test_any_valid_zone_split_is_safe(self, zones):
        assert InRushModel().zone_plan_safe(make_ufpg_zones(zones=zones))


class TestSnoopFilterModel:
    def test_calibrated_band(self):
        # The workloads' constant ~100-200 Hz per idle core must be
        # derivable at the mid-load point.
        rate = calibrated_rate_check()
        assert 50.0 <= rate <= 500.0

    def test_rate_scales_with_load(self):
        model = SnoopFilterModel()
        low = model.snoop_rate_for_idle_core(10_000, 10)
        high = model.snoop_rate_for_idle_core(500_000, 10)
        assert high == pytest.approx(low * 50, rel=0.01)

    def test_perfect_filter_directs_everything(self):
        model = SnoopFilterModel(filter_coverage=1.0)
        assert model.directed_fraction(10) == 1.0

    def test_worse_filter_means_more_snoops(self):
        good = SnoopFilterModel(filter_coverage=1.0)
        bad = SnoopFilterModel(filter_coverage=0.5)
        assert bad.snoop_rate_for_idle_core(100_000, 10) > good.snoop_rate_for_idle_core(
            100_000, 10
        )

    def test_zero_sharing_means_zero_snoops(self):
        model = SnoopFilterModel(sharing_probability=0.0)
        assert model.snoop_rate_for_idle_core(500_000, 10) == 0.0

    def test_single_core_rejected(self):
        with pytest.raises(ConfigurationError):
            SnoopFilterModel().snoop_rate_for_idle_core(1000, 1)

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigurationError):
            SnoopFilterModel(sharing_probability=1.5)
        with pytest.raises(ConfigurationError):
            SnoopFilterModel(filter_coverage=0.0)
