"""Tests for repro.units: conversions and pretty-printing."""

import math

import pytest

from repro import units


class TestTimeConstants:
    def test_us_is_microseconds(self):
        assert units.US == 1e-6

    def test_ns_is_nanoseconds(self):
        assert units.NS == 1e-9

    def test_year_is_365_days(self):
        assert units.YEAR == 365 * 24 * 3600

    def test_ordering(self):
        assert units.PS < units.NS < units.US < units.MS < units.SECOND


class TestConversions:
    def test_seconds_to_us(self):
        assert units.seconds_to_us(2e-6) == pytest.approx(2.0)

    def test_seconds_to_ns(self):
        assert units.seconds_to_ns(70e-9) == pytest.approx(70.0)

    def test_watts_to_mw(self):
        assert units.watts_to_mw(0.3) == pytest.approx(300.0)

    def test_joules_to_kwh(self):
        assert units.joules_to_kwh(3.6e6) == pytest.approx(1.0)

    def test_kwh_roundtrip(self):
        assert units.joules_to_kwh(2.5 * units.KWH) == pytest.approx(2.5)


class TestCyclesToSeconds:
    def test_simple(self):
        # 10 cycles at 500 MHz = 20 ns (the C6A entry bound).
        assert units.cycles_to_seconds(10, 500e6) == pytest.approx(20e-9)

    def test_one_cycle_at_1hz(self):
        assert units.cycles_to_seconds(1, 1.0) == 1.0

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            units.cycles_to_seconds(10, 0.0)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            units.cycles_to_seconds(10, -1e9)


class TestPrettyTime:
    def test_zero(self):
        assert units.pretty_time(0) == "0s"

    def test_nanoseconds(self):
        assert units.pretty_time(70e-9) == "70.0ns"

    def test_microseconds(self):
        assert units.pretty_time(133e-6) == "133.0us"

    def test_milliseconds(self):
        assert units.pretty_time(2.5e-3) == "2.5ms"

    def test_seconds(self):
        assert units.pretty_time(1.5) == "1.500s"

    def test_picoseconds(self):
        assert "ps" in units.pretty_time(5e-13)

    def test_negative_gets_sign(self):
        assert units.pretty_time(-1e-6).startswith("-")


class TestPrettyPower:
    def test_milliwatts(self):
        assert units.pretty_power(0.3) == "300.0mW"

    def test_watts(self):
        assert units.pretty_power(4.0) == "4.00W"

    def test_microwatts(self):
        assert "uW" in units.pretty_power(200e-6)

    def test_negative_gets_sign(self):
        assert units.pretty_power(-0.5).startswith("-")


class TestFrequencyConstants:
    def test_ghz(self):
        assert units.GHZ == 1e9

    def test_capacity(self):
        assert units.MB == 1024 * units.KB
        assert units.KB == 1024
