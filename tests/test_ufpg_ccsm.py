"""Tests for the UFPG and CCSM subsystems (Sec 4.1, 4.2, 5.1)."""

import pytest

from repro.core.ccsm import CCSM, CCSMConfig, V_RETENTION
from repro.core.ufpg import UFPG, UFPGConfig, V_P1, V_PN
from repro.errors import PowerModelError
from repro.units import MILLIWATT, NS


class TestUFPGPower:
    def test_residual_band_at_p1_matches_table3(self):
        # Table 3 alpha: ~30-50 mW at P1.
        low, high = UFPG().residual_power_range("P1")
        assert low == pytest.approx(30 * MILLIWATT, rel=0.05)
        assert high == pytest.approx(50 * MILLIWATT, rel=0.05)

    def test_residual_band_at_pn_matches_table3(self):
        # Table 3 alpha: ~18-30 mW at Pn.
        low, high = UFPG().residual_power_range("Pn")
        assert 15 * MILLIWATT <= low <= 20 * MILLIWATT
        assert 28 * MILLIWATT <= high <= 32 * MILLIWATT

    def test_retention_power_2mw_1mw(self):
        ufpg = UFPG()
        assert ufpg.retention_power("P1") == pytest.approx(2 * MILLIWATT)
        assert ufpg.retention_power("Pn") == pytest.approx(1 * MILLIWATT)

    def test_idle_power_is_residual_plus_retention(self):
        ufpg = UFPG()
        assert ufpg.idle_power("P1") == pytest.approx(
            ufpg.residual_power("P1") + ufpg.retention_power("P1")
        )

    def test_pn_cheaper_than_p1(self):
        ufpg = UFPG()
        assert ufpg.idle_power("Pn") < ufpg.idle_power("P1")

    def test_unknown_rail_rejected(self):
        with pytest.raises(PowerModelError):
            UFPG().residual_power_range("P0")


class TestUFPGLatencyArea:
    def test_wake_under_70ns(self):
        assert UFPG().wake_latency < 70 * NS

    def test_save_cycles_3_to_4(self):
        assert 3 <= UFPG().save_cycles <= 4

    def test_restore_one_cycle(self):
        assert UFPG().restore_cycles == 1

    def test_area_overhead_band(self):
        low, high = UFPG().area_overhead_range()
        # 2-6% of the ~70% gated region: 1.4% - 4.2% (+<1% retention).
        assert 0.01 <= low <= 0.02
        assert 0.04 <= high <= 0.06

    def test_frequency_penalty_1pct(self):
        assert UFPG().frequency_penalty == pytest.approx(0.01)

    def test_in_rush_safe(self):
        assert UFPG().in_rush_safe


class TestUFPGConfigValidation:
    def test_residual_order_enforced(self):
        with pytest.raises(PowerModelError):
            UFPGConfig(residual_low=0.05, residual_high=0.03)

    def test_gated_fraction_bounds(self):
        with pytest.raises(PowerModelError):
            UFPGConfig(gated_area_fraction=1.5)

    def test_large_frequency_penalty_rejected(self):
        with pytest.raises(PowerModelError):
            UFPGConfig(frequency_penalty=0.2)

    def test_custom_leakage_scales_residual(self):
        small = UFPG(UFPGConfig(core_leakage_watts=0.72))
        big = UFPG(UFPGConfig(core_leakage_watts=1.44))
        assert small.residual_power("P1") == pytest.approx(
            big.residual_power("P1") / 2
        )


class TestCCSMPower:
    def test_data_array_sleep_power_p1_near_55mw(self):
        # Table 3 gamma: ~55 mW for the L1/L2 arrays at P1.
        power = CCSM().data_array_sleep_power("P1")
        assert power == pytest.approx(55 * MILLIWATT, rel=0.05)

    def test_data_array_sleep_power_pn_near_40mw(self):
        # Sleep transistor efficiency rises at Vmin: ~40 mW at Pn.
        power = CCSM().data_array_sleep_power("Pn")
        assert power == pytest.approx(40 * MILLIWATT, rel=0.10)

    def test_rest_power_p1_55mw(self):
        assert CCSM().ungated_rest_power("P1") == pytest.approx(55 * MILLIWATT)

    def test_rest_power_pn_near_33mw(self):
        assert CCSM().ungated_rest_power("Pn") == pytest.approx(33 * MILLIWATT, rel=0.05)

    def test_idle_power_sums_components(self):
        c = CCSM()
        assert c.idle_power("P1") == pytest.approx(
            c.data_array_sleep_power("P1") + c.ungated_rest_power("P1")
        )

    def test_snoop_service_delta_170mw(self):
        # Sec 7.5: clock ungate (~50 mW) + sleep exit (~120 mW).
        assert CCSM().snoop_service_power_delta() == pytest.approx(170 * MILLIWATT)

    def test_unknown_rail_rejected(self):
        with pytest.raises(PowerModelError):
            CCSM().data_array_sleep_power("Vmax")


class TestCCSMLatencyAreaPerf:
    def test_sleep_enter_1_to_3_cycles(self):
        assert 1 <= CCSM().sleep_enter_cycles <= 3

    def test_sleep_exit_2_cycles(self):
        assert CCSM().sleep_exit_cycles == 2

    def test_zero_performance_penalty(self):
        # Data-array wake hides under the tag access (Sec 5.1.2).
        assert CCSM().performance_penalty == 0.0

    def test_area_overhead_band(self):
        low, high = CCSM().area_overhead_range()
        # 2-6% of the arrays (~27% of core): 0.5% - 1.6%.
        assert 0.004 <= low <= 0.01
        assert 0.015 <= high <= 0.025


class TestCCSMConfigValidation:
    def test_rejects_zero_capacity(self):
        with pytest.raises(PowerModelError):
            CCSMConfig(l1_capacity_bytes=0)

    def test_rejects_bad_data_fraction(self):
        with pytest.raises(PowerModelError):
            CCSMConfig(data_array_fraction=0.2)

    def test_rejects_negative_snoop_power(self):
        with pytest.raises(PowerModelError):
            CCSMConfig(clock_ungate_power=-1.0)

    def test_capacity_scales_sleep_power(self):
        small = CCSM(CCSMConfig(l2_capacity_bytes=512 * 1024))
        assert small.data_array_sleep_power("P1") < CCSM().data_array_sleep_power("P1")

    def test_retention_voltage_constant_sane(self):
        assert 0.3 < V_RETENTION < V_PN < V_P1 <= 1.0
