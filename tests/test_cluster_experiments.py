"""Tests for the cluster experiment family and --params overrides."""

import sys

import pytest

from repro.errors import ConfigurationError
from repro.experiments.api import (
    experiment_ids,
    get_experiment,
    parse_param_overrides,
)
from repro.experiments.cluster import (
    BalancerStudyExperiment,
    ClusterEnergyExperiment,
    FanoutTailExperiment,
    FanoutTailParams,
)


class TestRegistration:
    def test_cluster_family_registered(self):
        ids = experiment_ids()
        for experiment_id in ("fanout_tail", "balancer_study", "cluster_energy"):
            assert experiment_id in ids


class TestFanoutTail:
    @pytest.fixture(scope="class")
    def result(self):
        experiment = FanoutTailExperiment().quick()
        return experiment, experiment.execute()

    def test_quick_covers_two_governors(self, result):
        experiment, outcome = result
        governors = {record["governor"] for record in outcome.records}
        assert len(governors) >= 2

    def test_records_have_p99_per_fanout(self, result):
        experiment, outcome = result
        fanouts = {record["fanout"] for record in outcome.records}
        assert len(fanouts) >= 2
        for record in outcome.records:
            assert record["p99_latency"] > 0
            assert record["p99_amplification"] > 0
            assert record["nodes"] == experiment.params.nodes

    def test_amplification_is_relative_to_smallest_fanout(self, result):
        experiment, outcome = result
        smallest = min(experiment.params.fanouts)
        for record in outcome.records:
            if record["fanout"] == smallest:
                assert record["p99_amplification"] == pytest.approx(1.0)

    def test_amplification_baseline_survives_unsorted_fanouts(self):
        # `--params fanouts=4,1` lists the fan-outs largest-first; the
        # baseline must still be the smallest fan-out, not the first.
        quick = FanoutTailExperiment().quick()
        experiment = FanoutTailExperiment(
            type(quick.params)(
                nodes=quick.params.nodes, cores=quick.params.cores,
                horizon=quick.params.horizon,
                per_node_kqps=quick.params.per_node_kqps,
                fanouts=(4, 1), governors=("menu",),
            )
        )
        outcome = experiment.execute()
        by_fanout = {r["fanout"]: r for r in outcome.records}
        assert by_fanout[1]["p99_amplification"] == pytest.approx(1.0)
        assert by_fanout[4]["p99_amplification"] > 1.0

    def test_render_text_is_a_p99_vs_fanout_table(self, result):
        experiment, outcome = result
        text = experiment.render_text(outcome)
        for governor in experiment.params.governors:
            assert f"{governor} p99" in text
        assert "fanout" in text

    def test_leaf_rate_constant_across_fanouts(self):
        experiment = FanoutTailExperiment().quick()
        p = experiment.params
        for spec in experiment.grid():
            assert spec.qps * spec.fanout / spec.nodes == pytest.approx(
                p.per_node_kqps * 1000.0
            )


class TestBalancerStudy:
    def test_quick_covers_every_balancer(self):
        experiment = BalancerStudyExperiment().quick()
        outcome = experiment.execute()
        balancers = {record["balancer"] for record in outcome.records}
        assert balancers == set(experiment.params.balancers)
        text = experiment.render_text(outcome)
        for balancer in experiment.params.balancers:
            assert balancer in text


class TestClusterEnergy:
    def test_quick_reports_proportionality_metrics(self):
        experiment = ClusterEnergyExperiment().quick()
        outcome = experiment.execute()
        configs = {record["config"] for record in outcome.records}
        assert configs == set(experiment.params.configs)
        assert any("dynamic range" in note for note in outcome.notes)
        assert any("proportionality gap" in note for note in outcome.notes)
        for record in outcome.records:
            assert record["package_power"] > 0
            assert 0 <= record["utilization"] <= 1


class TestParamOverrides:
    def test_typed_coercion(self):
        experiment = parse_param_overrides(
            FanoutTailExperiment(),
            ["nodes=4", "fanouts=1,2", "per_node_kqps=12.5", "hedge_ms=0.5"],
        )
        p = experiment.params
        assert p.nodes == 4
        assert p.fanouts == (1, 2)
        assert p.per_node_kqps == 12.5
        assert p.hedge_ms == 0.5

    def test_optional_accepts_none(self):
        experiment = parse_param_overrides(
            FanoutTailExperiment(FanoutTailParams(hedge_ms=0.5)),
            ["hedge_ms=none"],
        )
        assert experiment.params.hedge_ms is None

    def test_string_tuple(self):
        experiment = parse_param_overrides(
            FanoutTailExperiment(), ["governors=menu,oracle"]
        )
        assert experiment.params.governors == ("menu", "oracle")

    def test_unknown_key_lists_valid_ones(self):
        with pytest.raises(ConfigurationError, match="valid keys"):
            parse_param_overrides(FanoutTailExperiment(), ["bogus=1"])

    def test_malformed_assignment(self):
        with pytest.raises(ConfigurationError, match="key=value"):
            parse_param_overrides(FanoutTailExperiment(), ["nodes"])

    def test_uncoercible_value(self):
        with pytest.raises(ConfigurationError, match="cannot parse"):
            parse_param_overrides(FanoutTailExperiment(), ["nodes=many"])

    def test_empty_tuple_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            parse_param_overrides(FanoutTailExperiment(), ["fanouts="])

    def test_overrides_work_on_any_experiment(self):
        experiment = parse_param_overrides(
            get_experiment("fig9"), ["rates_kqps=10,20", "horizon=0.01"]
        )
        assert experiment.params.rates_kqps == (10.0, 20.0)
        assert experiment.params.horizon == 0.01

    def test_no_overrides_returns_same_instance(self):
        experiment = FanoutTailExperiment()
        assert parse_param_overrides(experiment, []) is experiment

    @pytest.mark.skipif(
        sys.version_info < (3, 10), reason="PEP 604 unions need Python 3.10+"
    )
    def test_pep604_optional_annotation_coerces(self):
        from repro.experiments.api import _coerce_value

        annotation = eval("float | None")  # noqa: S307 - test-only literal
        assert _coerce_value(annotation, "0.5", "hedge_ms") == 0.5
        assert _coerce_value(annotation, "none", "hedge_ms") is None
