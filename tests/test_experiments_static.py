"""Tests for the non-simulation experiments (tables, breakdowns, bounds)."""

import pytest

from repro.experiments import (
    latency_breakdown,
    motivation,
    snoop,
    table1,
    table2,
    table3,
    table4,
    validation,
)
from repro.experiments.common import format_table, pct


class TestTable1:
    def test_row_order_matches_paper(self):
        names = [row[0] for row in table1.run()]
        assert names == [
            "C0 (P1)", "C0 (Pn)", "C1 (P1)", "C6A (P1)",
            "C1E (Pn)", "C6AE (Pn)", "C6",
        ]

    def test_c6a_next_to_c1(self):
        rows = {row[0]: row for row in table1.run()}
        assert rows["C1 (P1)"][1] == "2.0us"
        assert rows["C6A (P1)"][2] == "2.0us"  # same target residency

    def test_powers_rendered(self):
        rows = {row[0]: row for row in table1.run()}
        assert rows["C0 (P1)"][3] == "4.00W"
        assert rows["C6"][3] == "100.0mW"

    def test_main_prints(self, capsys):
        table1.main()
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "C6AE" in out


class TestTable2:
    def test_six_states(self):
        assert len(table2.run()) == 6

    def test_c6a_row(self):
        rows = {row[0]: row for row in table2.run()}
        assert rows["C6A"][1] == "stopped"
        assert rows["C6A"][2] == "on"
        assert rows["C6A"][3] == "coherent"

    def test_main_prints(self, capsys):
        table2.main()
        assert "Table 2" in capsys.readouterr().out


class TestTable3:
    def test_breakdown_bands(self):
        breakdown = table3.run()
        low, high = breakdown.total_power_range("C6A")
        assert 0.28 <= low <= high <= 0.32

    def test_main_prints(self, capsys):
        table3.main()
        out = capsys.readouterr().out
        assert "Overall" in out
        assert "paper bands" in out


class TestTable4:
    def test_aw_row_is_last(self):
        rows = table4.run()
        assert rows[-1][0] == "AW (this work)"
        assert "ns" in rows[-1][4]

    def test_aw_wake_under_70ns(self):
        wake = table4.run()[-1][4]
        value = float(wake.strip("~ ns"))
        assert value < 70

    def test_seven_rows(self):
        assert len(table4.run()) == 7

    def test_main_prints(self, capsys):
        table4.main()
        assert "Table 4" in capsys.readouterr().out


class TestMotivationExperiment:
    def test_three_rows_with_paper_fractions(self):
        rows = motivation.run()
        fractions = [savings for _, _, savings in rows]
        assert fractions[0] == pytest.approx(0.23, abs=0.01)
        assert fractions[1] == pytest.approx(0.41, abs=0.01)
        assert fractions[2] == pytest.approx(0.55, abs=0.01)

    def test_main_prints(self, capsys):
        motivation.main()
        assert "Eq. 1" in capsys.readouterr().out


class TestLatencyBreakdownExperiment:
    def test_c6_phases(self):
        report = latency_breakdown.run()
        assert report.c6_entry == pytest.approx(87e-6, rel=0.02)
        assert report.c6_exit == pytest.approx(30e-6, rel=0.01)
        assert report.c6_round_trip == pytest.approx(133e-6, rel=0.01)

    def test_c6a_under_100ns(self):
        report = latency_breakdown.run()
        assert report.c6a_round_trip < 100e-9

    def test_speedup_three_orders(self):
        assert latency_breakdown.run().speedup >= 500

    def test_flush_grid_monotone(self):
        report = latency_breakdown.run()
        at_800 = [t for d, f, t in report.flush_grid if f == pytest.approx(800e6)]
        assert at_800 == sorted(at_800)

    def test_main_prints(self, capsys):
        latency_breakdown.main()
        out = capsys.readouterr().out
        assert "flush" in out
        assert "round trip" in out


class TestSnoopExperiment:
    def test_bounds(self):
        report = snoop.run()
        assert report.bounds.savings_no_snoops == pytest.approx(0.79, abs=0.01)
        assert report.bounds.savings_loss == pytest.approx(0.11, abs=0.01)

    def test_sweep_monotone_decreasing(self):
        report = snoop.run()
        savings = [s for _, s in report.duty_sweep]
        assert savings == sorted(savings, reverse=True)

    def test_main_prints(self, capsys):
        snoop.main()
        assert "7.5" in capsys.readouterr().out


class TestValidationExperiment:
    def test_four_workloads(self):
        assert len(validation.run()) == 4

    def test_main_prints(self, capsys):
        validation.main()
        out = capsys.readouterr().out
        assert "SPECpower" in out
        assert "accuracy" in out


class TestFormattingHelpers:
    def test_format_table_alignment(self):
        text = format_table(["A", "Bee"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")

    def test_pct(self):
        assert pct(0.235) == "23.5%"
        assert pct(0.235, 0) == "24%"
