"""Tests for workload models, load generators and profiles."""

import pytest

from repro.core.cstates import FrequencyPoint
from repro.errors import ConfigurationError, WorkloadError
from repro.simkit.distributions import Degenerate
from repro.units import US
from repro.workloads import (
    KAFKA_RATES,
    MEMCACHED_RATES_KQPS,
    MYSQL_RATES,
    OpenLoopPoisson,
    ServiceTimeModel,
    Workload,
    kafka_workload,
    memcached_workload,
    motivation_profiles,
    mysql_workload,
    validation_profiles,
)
from repro.workloads.loadgen import BurstyLoadGenerator
from repro.workloads.profiles import ProfileLevel, ResidencyProfile


def _fixed_model(scalable=4 * US, fixed=6 * US):
    return ServiceTimeModel(
        scalable=Degenerate(scalable), fixed=Degenerate(fixed)
    )


class TestServiceTimeModel:
    def test_mean_splits(self):
        model = _fixed_model()
        assert model.mean == pytest.approx(10 * US)
        assert model.scalable_fraction == pytest.approx(0.4)

    def test_sample_at_base_frequency(self):
        assert _fixed_model().sample() == pytest.approx(10 * US)

    def test_turbo_shrinks_scalable_part(self):
        model = _fixed_model()
        turbo = model.sample(frequency=FrequencyPoint.TURBO)
        expected = 4 * US * (2.2 / 3.0) + 6 * US
        assert turbo == pytest.approx(expected)

    def test_pn_inflates_scalable_part(self):
        model = _fixed_model()
        slow = model.sample(frequency=FrequencyPoint.PN)
        assert slow > model.sample()

    def test_derate_slows_service(self):
        model = _fixed_model()
        derated = model.sample(frequency_derate=0.01)
        assert derated > model.sample()
        assert derated == pytest.approx(4 * US / 0.99 + 6 * US)

    def test_mean_at_matches_sample_for_degenerate(self):
        model = _fixed_model()
        assert model.mean_at(FrequencyPoint.TURBO) == pytest.approx(
            model.sample(FrequencyPoint.TURBO)
        )

    def test_bad_derate_rejected(self):
        with pytest.raises(WorkloadError):
            _fixed_model().sample(frequency_derate=1.0)

    def test_frequency_scalability_bounds(self):
        fully_scalable = ServiceTimeModel(Degenerate(10 * US), Degenerate(0.0))
        fully_fixed = ServiceTimeModel(Degenerate(0.0), Degenerate(10 * US))
        assert fully_scalable.frequency_scalability() == pytest.approx(1.0)
        assert fully_fixed.frequency_scalability() == pytest.approx(0.0)

    def test_frequency_scalability_matches_split(self):
        # 40% scalable work: scalability ~ 0.4 at small frequency deltas.
        model = _fixed_model()
        assert model.frequency_scalability() == pytest.approx(0.4, abs=0.05)

    def test_bad_frequency_pair_rejected(self):
        with pytest.raises(WorkloadError):
            _fixed_model().frequency_scalability(f_low_hz=2e9, f_high_hz=1e9)


class TestWorkloadContainer:
    def test_utilization(self):
        w = Workload("t", _fixed_model())
        # 100 K QPS x 10 us / 10 cores = 10%.
        assert w.utilization(100_000, 10) == pytest.approx(0.1)

    def test_bad_write_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            Workload("t", _fixed_model(), write_fraction=2.0)

    def test_bad_utilization_args_rejected(self):
        w = Workload("t", _fixed_model())
        with pytest.raises(WorkloadError):
            w.utilization(-1, 10)
        with pytest.raises(WorkloadError):
            w.utilization(1, 0)


class TestServiceParameterisations:
    def test_memcached_service_time_band(self):
        w = memcached_workload()
        assert 5 * US <= w.service.mean <= 15 * US

    def test_memcached_read_heavy(self):
        assert memcached_workload().write_fraction < 0.1

    def test_memcached_network_latency_117us(self):
        assert memcached_workload().network_latency == pytest.approx(117 * US)

    def test_memcached_rates_match_paper(self):
        assert MEMCACHED_RATES_KQPS == [10, 50, 100, 200, 300, 400, 500]

    def test_kafka_heavier_than_memcached(self):
        assert kafka_workload().service.mean > memcached_workload().service.mean

    def test_kafka_rates_low_high(self):
        assert set(KAFKA_RATES) == {"low", "high"}
        assert KAFKA_RATES["low"] < KAFKA_RATES["high"]

    def test_mysql_heaviest(self):
        assert mysql_workload().service.mean > kafka_workload().service.mean

    def test_mysql_rates_low_mid_high(self):
        assert set(MYSQL_RATES) == {"low", "mid", "high"}

    def test_all_have_positive_scalability(self):
        for factory in (memcached_workload, kafka_workload, mysql_workload):
            scalability = factory().service.frequency_scalability()
            assert 0.1 <= scalability <= 0.9

    def test_reproducible_sampling(self):
        a = memcached_workload().service
        b = memcached_workload().service
        assert [a.sample() for _ in range(20)] == [b.sample() for _ in range(20)]


class TestOpenLoopPoisson:
    def test_rate_property(self):
        assert OpenLoopPoisson(1000.0).rate_qps == 1000.0

    def test_arrival_count_near_expected(self):
        gen = OpenLoopPoisson(10_000.0, seed=3)
        arrivals = list(gen.arrivals(1.0))
        assert len(arrivals) == pytest.approx(10_000, rel=0.05)

    def test_arrivals_sorted_and_in_horizon(self):
        gen = OpenLoopPoisson(1000.0, seed=4)
        arrivals = list(gen.arrivals(0.5))
        assert arrivals == sorted(arrivals)
        assert all(0 <= t < 0.5 for t in arrivals)

    def test_seeded_reproducibility(self):
        a = list(OpenLoopPoisson(1000.0, seed=5).arrivals(0.1))
        b = list(OpenLoopPoisson(1000.0, seed=5).arrivals(0.1))
        assert a == b

    def test_zero_rate_rejected(self):
        with pytest.raises(WorkloadError):
            OpenLoopPoisson(0.0)

    def test_bad_horizon_rejected(self):
        with pytest.raises(WorkloadError):
            list(OpenLoopPoisson(100.0).arrivals(0.0))


class TestBurstyLoadGenerator:
    def test_average_rate(self):
        gen = BurstyLoadGenerator(peak_qps=1000.0, on_mean=0.1, off_mean=0.1)
        assert gen.rate_qps == pytest.approx(500.0)

    def test_generates_bursts(self):
        gen = BurstyLoadGenerator(
            peak_qps=100_000.0, on_mean=0.01, off_mean=0.05, seed=2
        )
        arrivals = list(gen.arrivals(1.0))
        assert len(arrivals) > 100
        assert arrivals == sorted(arrivals)

    def test_bad_params_rejected(self):
        with pytest.raises(WorkloadError):
            BurstyLoadGenerator(0.0, 0.1, 0.1)
        with pytest.raises(WorkloadError):
            BurstyLoadGenerator(100.0, 0.0, 0.1)


class TestProfiles:
    def test_motivation_profiles_residencies_sum_to_one(self):
        for _, residency in motivation_profiles():
            assert sum(residency.values()) == pytest.approx(1.0)

    def test_motivation_has_three_examples(self):
        assert len(motivation_profiles()) == 3

    def test_validation_profiles_names(self):
        names = [p.name for p in validation_profiles()]
        assert names == ["SPECpower", "Nginx", "Spark", "Hive"]

    def test_validation_levels_sum_to_one(self):
        for profile in validation_profiles():
            for level in profile.levels:
                assert sum(level.residency.values()) == pytest.approx(1.0)

    def test_level_lookup(self):
        profile = validation_profiles()[0]
        assert profile.level("10%").label == "10%"
        with pytest.raises(ConfigurationError):
            profile.level("nope")

    def test_bad_residency_sum_rejected(self):
        with pytest.raises(ConfigurationError):
            ProfileLevel("x", {"C0": 0.5, "C1": 0.2})

    def test_negative_residency_rejected(self):
        with pytest.raises(ConfigurationError):
            ProfileLevel("x", {"C0": 1.2, "C1": -0.2})

    def test_duplicate_labels_rejected(self):
        level = ProfileLevel("a", {"C0": 1.0})
        with pytest.raises(ConfigurationError):
            ResidencyProfile("p", [level, level])

    def test_implausible_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            ProfileLevel("x", {"C0": 1.0}, measurement_gap=0.9)
