"""Cross-module integration tests.

These exercise combinations the unit tests cannot: the PMA flow driven by
the event engine, the analytical model cross-checked against simulation,
and full catalog plumbing from design to node.
"""

import pytest

from repro import AgileWattsDesign, named_configuration, simulate
from repro.analytical import AgileWattsPowerModel, average_power
from repro.core.pma_flow import C6AFlow, PMAState
from repro.simkit import Simulator
from repro.units import US
from repro.workloads import memcached_workload


class TestEventDrivenPMAFlow:
    """Drive the C6A FSM from the event engine like a real PMA would."""

    def test_mwait_interrupt_sequence(self):
        sim = Simulator()
        flow = C6AFlow()
        log = []

        def mwait():
            latency = flow.request_entry()
            log.append(("entered", sim.now + latency))

        def interrupt():
            latency = flow.request_exit()
            log.append(("exited", sim.now + latency))

        sim.schedule_at(10 * US, mwait)
        sim.schedule_at(50 * US, interrupt)
        sim.run()
        assert [kind for kind, _ in log] == ["entered", "exited"]
        assert flow.state is PMAState.C0
        # The entry completed within nanoseconds of the MWAIT.
        assert log[0][1] - 10 * US < 25e-9

    def test_snoop_burst_between_idle_and_wake(self):
        sim = Simulator()
        flow = C6AFlow()
        served = []

        sim.schedule_at(1 * US, flow.request_entry)
        sim.schedule_at(5 * US, lambda: served.append(flow.serve_snoops(0.2 * US)))
        sim.schedule_at(9 * US, flow.request_exit)
        sim.run()
        assert flow.snoops_served == 1
        assert served[0] > 0.2 * US  # a + b + c


class TestAnalyticVsSimulation:
    """Eq. 2/3 cross-checked against the event-driven integration."""

    def test_eq2_matches_simulated_power_without_turbo(self):
        # With Turbo off, the simulator's RAPL-style power must agree
        # with Eq. 2 applied to its own residencies (up to transition
        # windows and snoop service, which are small at moderate load).
        result = simulate(
            memcached_workload(), named_configuration("NT_Baseline"),
            qps=100_000, horizon=0.15, seed=42, snoops_enabled=False,
        )
        analytic = average_power(result.residency)
        assert analytic == pytest.approx(result.avg_core_power, rel=0.02)

    def test_eq3_model_tracks_simulated_aw(self):
        # The paper's Eq. 3 rescaling (baseline residencies -> AW power)
        # should land near the *simulated* AW power.
        base = simulate(
            memcached_workload(), named_configuration("NT_Baseline"),
            qps=100_000, horizon=0.15, seed=42, snoops_enabled=False,
        )
        aw = simulate(
            memcached_workload(), named_configuration("NT_AW"),
            qps=100_000, horizon=0.15, seed=42, snoops_enabled=False,
        )
        model = AgileWattsPowerModel(
            frequency_scalability=memcached_workload().service.frequency_scalability()
        )
        predicted = model.average_power(
            base.residency, base.transitions_per_second
        )
        assert predicted == pytest.approx(aw.avg_core_power, rel=0.10)

    def test_design_verification_gates_simulation(self):
        # A verified design's catalog flows through config to simulation.
        design = AgileWattsDesign()
        design.verify_or_raise()
        config = named_configuration("AW", design=design)
        result = simulate(memcached_workload(), config, qps=50_000,
                          horizon=0.05, seed=1)
        aw_residency = result.residency_of("C6A") + result.residency_of("C6AE")
        assert aw_residency > 0.3


class TestSeedSensitivity:
    def test_power_stable_across_seeds(self):
        # The headline savings should be a property of the system, not
        # the seed: spread across seeds stays within a few percent.
        powers = [
            simulate(memcached_workload(), named_configuration("NT_Baseline"),
                     qps=100_000, horizon=0.08, seed=seed).avg_core_power
            for seed in (1, 2, 3)
        ]
        spread = (max(powers) - min(powers)) / min(powers)
        assert spread < 0.05


class TestHorizonConvergence:
    def test_longer_horizon_converges(self):
        short = simulate(memcached_workload(), named_configuration("NT_Baseline"),
                         qps=100_000, horizon=0.05, seed=42)
        long = simulate(memcached_workload(), named_configuration("NT_Baseline"),
                        qps=100_000, horizon=0.2, seed=42)
        assert long.avg_core_power == pytest.approx(short.avg_core_power, rel=0.05)
        assert long.utilization == pytest.approx(short.utilization, rel=0.10)
