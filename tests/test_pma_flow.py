"""Tests for the C6A PMA flow FSM (Fig 6, Sec 4.3, 5.2)."""

import pytest

from repro.core.pma_flow import PMA_CLOCK_HZ, C6AFlow, PMAState
from repro.errors import CStateError
from repro.units import NS


class TestLatencyBudgets:
    def test_entry_under_20ns(self):
        # Sec 5.2.1: < 10 PMA cycles at 500 MHz.
        assert C6AFlow().entry_latency < 20 * NS

    def test_entry_under_10_cycles(self):
        flow = C6AFlow()
        cycles = sum(step.cycles for step in flow.entry_steps())
        assert cycles < 10

    def test_exit_under_80ns(self):
        # Sec 5.2.2: ~5 cycles + < 70 ns staggered ungate.
        assert C6AFlow().exit_latency < 80 * NS

    def test_round_trip_under_100ns(self):
        assert C6AFlow().round_trip_latency < 100 * NS

    def test_pma_clock_is_500mhz(self):
        assert PMA_CLOCK_HZ == pytest.approx(500e6)

    def test_exit_dominated_by_stagger(self):
        flow = C6AFlow()
        stagger = flow.exit_steps()[1].extra_time
        assert stagger > 0.5 * flow.exit_latency

    def test_snoop_wake_is_two_cycles(self):
        flow = C6AFlow()
        assert flow.snoop_wake_latency == pytest.approx(2 / PMA_CLOCK_HZ)

    def test_enhanced_flow_same_hardware_latency(self):
        # C6AE's DVFS to Pn is non-blocking: same entry/exit path.
        assert C6AFlow(enhanced=True).entry_latency == C6AFlow().entry_latency
        assert C6AFlow(enhanced=True).exit_latency == C6AFlow().exit_latency


class TestStepStructure:
    def test_three_entry_steps(self):
        labels = [s.label for s in C6AFlow().entry_steps()]
        assert len(labels) == 3
        assert labels[0].startswith("1:")
        assert labels[2].startswith("3:")

    def test_three_exit_steps(self):
        labels = [s.label for s in C6AFlow().exit_steps()]
        assert len(labels) == 3
        assert labels[0].startswith("4:")
        assert labels[2].startswith("6:")

    def test_snoop_steps_a_and_c(self):
        labels = [s.label for s in C6AFlow().snoop_steps()]
        assert labels[0].startswith("a:")
        assert labels[1].startswith("c:")

    def test_all_step_latencies_positive(self):
        flow = C6AFlow()
        for step in flow.entry_steps() + flow.exit_steps() + flow.snoop_steps():
            assert step.latency > 0


class TestFSMOperation:
    def test_starts_in_c0(self):
        assert C6AFlow().state is PMAState.C0

    def test_entry_exit_cycle(self):
        flow = C6AFlow()
        entry = flow.request_entry()
        assert flow.state is PMAState.IDLE
        assert entry == pytest.approx(flow.entry_latency)
        exit_lat = flow.request_exit()
        assert flow.state is PMAState.C0
        assert exit_lat == pytest.approx(flow.exit_latency)
        assert flow.entries == 1
        assert flow.exits == 1

    def test_double_entry_rejected(self):
        flow = C6AFlow()
        flow.request_entry()
        with pytest.raises(CStateError):
            flow.request_entry()

    def test_exit_from_c0_rejected(self):
        with pytest.raises(CStateError):
            C6AFlow().request_exit()

    def test_snoop_service_requires_idle(self):
        with pytest.raises(CStateError):
            C6AFlow().serve_snoops(1e-6)

    def test_snoop_service_returns_to_idle(self):
        flow = C6AFlow()
        flow.request_entry()
        total = flow.serve_snoops(200e-9)
        assert flow.state is PMAState.IDLE
        assert total > 200e-9  # includes a + c steps
        assert flow.snoops_served == 1

    def test_negative_snoop_time_rejected(self):
        flow = C6AFlow()
        flow.request_entry()
        with pytest.raises(CStateError):
            flow.serve_snoops(-1.0)

    def test_state_name_reflects_variant(self):
        flow = C6AFlow(enhanced=True)
        flow.request_entry()
        assert flow.state_name == "C6AE"
        basic = C6AFlow()
        basic.request_entry()
        assert basic.state_name == "C6A"

    def test_many_cycles_counted(self):
        flow = C6AFlow()
        for _ in range(10):
            flow.request_entry()
            flow.request_exit()
        assert flow.entries == 10
        assert flow.exits == 10


class TestDescribe:
    def test_describe_mentions_totals(self):
        text = C6AFlow().describe()
        assert "entry" in text
        assert "exit" in text
        assert "round trip" in text
