"""Fault-injection tests for the runtime sim-sanitizer (SAN rules).

Every test controls sanitizer state explicitly — through
:func:`repro.simkit.sanitizer.enabled` or monkeypatching — because the
CI sanitizer job runs this suite with ``REPRO_SANITIZE=1`` already
exported: tests must pass with the sanitizer on *or* off in the
environment. Each injected fault comes with the companion assertion
that matters: the same corruption is silent (or the same workload is
bit-identical) without the sanitizer.
"""

import dataclasses
import heapq
import json
import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from golden_specs import GOLDEN_SPECS, digest_result, spec_label  # noqa: E402

from repro.cluster import sharding
from repro.cluster.sharding import merge_node_results, run_shard
from repro.server import ServerNode, named_configuration
from repro.simkit import sanitizer
from repro.simkit.engine import Event, Simulator
from repro.simkit.sanitizer import CheckedFreeList, SanitizerError
from repro.store import ResultStore
from repro.store import result_store
from repro.sweep import ScenarioSpec
from repro.workloads import memcached_workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_digests.json")


def make_node(**kwargs):
    return ServerNode(
        memcached_workload(),
        named_configuration(kwargs.pop("config", "baseline")),
        qps=kwargs.pop("qps", 120_000),
        horizon=kwargs.pop("horizon", 0.01),
        seed=kwargs.pop("seed", 42),
        **kwargs,
    )


def sanitized_sim():
    with sanitizer.enabled():
        return Simulator()


# -- enablement -------------------------------------------------------------
def test_disabled_by_default(monkeypatch):
    monkeypatch.setattr(sanitizer, "_enabled", None)
    monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
    assert not sanitizer.is_enabled()
    assert Simulator().sanitizer is None


def test_env_var_enables(monkeypatch):
    monkeypatch.setattr(sanitizer, "_enabled", None)
    monkeypatch.setenv(sanitizer.ENV_VAR, "1")
    assert sanitizer.is_enabled()
    assert Simulator().sanitizer is not None


def test_enabled_scope_restores_state(monkeypatch):
    monkeypatch.setattr(sanitizer, "_enabled", None)
    monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
    with sanitizer.enabled():
        assert sanitizer.is_enabled()
        assert os.environ[sanitizer.ENV_VAR] == "1"  # workers inherit
    assert not sanitizer.is_enabled()
    assert sanitizer.ENV_VAR not in os.environ


# -- SAN001: checked engine loop --------------------------------------------
def corrupt_with_past_event(sim, fired):
    """Advance the clock past t=1, then smuggle a t=0.5 entry into the
    heap with a legitimately issued (already executed) sequence number —
    exactly what a buggy component corrupting the queue would produce."""
    sim.schedule_at(1.0, lambda: fired.append(sim.now))
    sim.run()
    heapq.heappush(sim._queue, (0.5, 0, lambda: fired.append(sim.now)))


def test_san001_event_behind_clock():
    sim = sanitized_sim()
    fired = []
    corrupt_with_past_event(sim, fired)
    with pytest.raises(SanitizerError) as err:
        sim.run()
    assert err.value.finding.rule_id == "SAN001"
    assert "behind the clock" in err.value.finding.message


def test_corrupted_timestamp_is_silent_without_sanitizer():
    """The hot loop deliberately omits the past-time check: the same
    corruption drags the clock backwards without a peep."""
    with sanitizer.enabled(False):
        sim = Simulator()
    assert sim.sanitizer is None
    fired = []
    corrupt_with_past_event(sim, fired)
    sim.run()  # no exception ...
    assert fired == [1.0, 0.5]  # ... and time ran backwards


def test_san001_unissued_sequence_number():
    sim = sanitized_sim()
    sim.schedule_at(1.0, lambda: None)
    heapq.heappush(sim._queue, (2.0, 999_999, lambda: None))
    with pytest.raises(SanitizerError) as err:
        sim.run()
    assert err.value.finding.rule_id == "SAN001"
    assert "never issued" in err.value.finding.message


def test_san001_duplicate_sequence_number():
    sim = sanitized_sim()
    first = sim.schedule_at(1.0, lambda: None)
    forged = Event(1.0, first.seq, lambda: None)
    heapq.heappush(sim._queue, (forged.time, forged.seq, forged))
    with pytest.raises(SanitizerError) as err:
        sim.run()
    assert err.value.finding.rule_id == "SAN001"
    assert "heap order corrupted" in err.value.finding.message


def test_checked_loop_clean_run_matches_unchecked():
    """Same schedule, sanitizer on vs off: identical firing order,
    clock, and counters."""
    def exercise(sim):
        fired = []
        sim.schedule_at(2.0, lambda: fired.append((sim.now, "b")))
        sim.schedule_at(1.0, lambda: fired.append((sim.now, "a")))
        event = sim.schedule_at(1.5, lambda: fired.append((sim.now, "x")))
        event.cancel()
        sim.schedule_at(3.0, lambda: fired.append((sim.now, "c")))
        sim.run(until=2.5)
        sim.run()
        return fired, sim.now, sim.events_processed, sim.peak_pending_events

    assert exercise(sanitized_sim()) == exercise(Simulator())


# -- SAN002: free-list double-free ------------------------------------------
def test_san002_double_free_rejected():
    pool = CheckedFreeList()
    request = object()
    pool.append(request)
    with pytest.raises(SanitizerError) as err:
        pool.append(request)
    assert err.value.finding.rule_id == "SAN002"


def test_san002_recycle_cycle_is_fine():
    pool = CheckedFreeList()
    request = object()
    for _ in range(3):  # free -> alloc -> free is the normal lifecycle
        pool.append(request)
        assert pool.pop() is request
    pool.append(object())
    pool.append(request)
    assert len(pool) == 2


# -- SAN003: package power accumulator audit --------------------------------
def test_san003_dropped_power_delta_detected(monkeypatch):
    monkeypatch.setattr(sanitizer, "AUDIT_INTERVAL", 64)
    with sanitizer.enabled():
        node = make_node()
    assert isinstance(node._request_pool, CheckedFreeList)

    def drop_delta():  # lose 2**-5 W from the fixed-point accumulator
        node.package._core_power_int -= 1 << 75

    node.sim.schedule_at(0.002, drop_delta)
    with pytest.raises(SanitizerError) as err:
        node.run()
    assert err.value.finding.rule_id == "SAN003"


def test_san003_dropped_power_delta_silent_without_sanitizer():
    with sanitizer.enabled(False):
        node = make_node()
    tampered = {}

    def drop_delta():
        node.package._core_power_int -= 1 << 75
        tampered["done"] = True

    node.sim.schedule_at(0.002, drop_delta)
    node.run()  # completes quietly with corrupted power accounting
    assert tampered["done"]


def test_san003_clean_run_passes_audits(monkeypatch):
    monkeypatch.setattr(sanitizer, "AUDIT_INTERVAL", 64)
    with sanitizer.enabled():
        node = make_node()
    node.run()  # hundreds of audits, zero violations


# -- SAN004: store codec round-trip -----------------------------------------
@pytest.fixture
def small_point():
    spec = ScenarioSpec("memcached", "baseline", qps=50_000, horizon=0.005)
    return spec, spec.execute()


def test_san004_faithful_codec_passes(tmp_path, small_point):
    spec, result = small_point
    store = ResultStore(tmp_path, salt="s1")
    with sanitizer.enabled():
        store.put(spec.cache_key, result, spec=spec)
    assert digest_result(store.get(spec.cache_key)) == digest_result(result)


def test_san004_truncating_codec_detected(tmp_path, small_point, monkeypatch):
    spec, result = small_point
    faithful = result_store.result_from_dict

    def truncating(payload_dict):
        decoded = faithful(payload_dict)
        return dataclasses.replace(decoded, completed=0)

    monkeypatch.setattr(result_store, "result_from_dict", truncating)
    store = ResultStore(tmp_path, salt="s1")
    with sanitizer.enabled():
        with pytest.raises(SanitizerError) as err:
            store.put(spec.cache_key, result, spec=spec)
    assert err.value.finding.rule_id == "SAN004"
    # Without the sanitizer the same write lands, silently poisoned.
    with sanitizer.enabled(False):
        store.put(spec.cache_key, result, spec=spec)


# -- SAN005: shard-merge order-invariance -----------------------------------
@pytest.fixture(scope="module")
def merged_cluster():
    spec = ScenarioSpec(
        "memcached", "baseline", qps=100_000, horizon=0.005, nodes=2
    )
    per_node = run_shard(spec, 0, 1) + run_shard(spec, 1, 2)
    return spec, per_node


def test_san005_clean_merge_passes(merged_cluster):
    spec, per_node = merged_cluster
    with sanitizer.enabled():
        merged = merge_node_results(spec, per_node)
    assert merged.completed == sum(r.completed for r in per_node)


def test_san005_dropped_node_detected(merged_cluster):
    spec, per_node = merged_cluster
    merged = merge_node_results(spec, per_node)
    tampered = dataclasses.replace(merged, completed=merged.completed - 1)
    with pytest.raises(SanitizerError) as err:
        sharding._audit_merge(per_node, tampered)
    assert err.value.finding.rule_id == "SAN005"
    assert "dropped or duplicated" in err.value.finding.message


def test_san005_lossy_latency_merge_detected(merged_cluster):
    spec, per_node = merged_cluster
    merged = merge_node_results(spec, per_node)
    tampered = dataclasses.replace(
        merged, server_latency=per_node[0].server_latency
    )
    with pytest.raises(SanitizerError) as err:
        sharding._audit_merge(per_node, tampered)
    assert err.value.finding.rule_id == "SAN005"
    assert "lossy" in err.value.finding.message


# -- acceptance: bit-identity under the sanitizer ---------------------------
def test_golden_digest_bit_identical_under_sanitizer():
    """The pinned golden digest — captured long before the sanitizer
    existed — must reproduce exactly with every SAN check active."""
    spec = GOLDEN_SPECS[0]
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)[spec_label(spec)]
    with sanitizer.enabled():
        assert digest_result(spec.execute()) == golden


def test_violation_renders_like_static_finding():
    finding = sanitizer.violation("SAN001", "simkit.engine", "boom").finding
    assert finding.path == "runtime:simkit.engine"
    assert finding.anchor == "runtime:simkit.engine:0:0"
    assert finding.rule_id == "SAN001"
