"""End-to-end assertions of the paper's headline claims.

Each test names the claim it checks (abstract / section) and verifies our
reproduction preserves it — direction, rough factor, crossovers — not the
authors' testbed-exact numbers.
"""

import pytest

from repro import AgileWattsDesign, named_configuration, simulate
from repro.analytical import ideal_savings, snoop_bounds, validate_power_model
from repro.core.latency import C6ALatencyModel, C6LatencyModel, transition_speedup
from repro.workloads import memcached_workload


@pytest.fixture(scope="module")
def design():
    return AgileWattsDesign()


class TestAbstractClaims:
    def test_c6a_power_is_7pct_of_c0(self, design):
        """Abstract: C6A consumes only ~7% of the active state power."""
        fraction = design.c6a_power / 4.0
        assert fraction == pytest.approx(0.07, abs=0.01)

    def test_c6ae_power_is_5pct_of_c0(self, design):
        """Abstract: C6AE consumes only ~5% of the active state power."""
        fraction = design.c6ae_power / 4.0
        assert fraction == pytest.approx(0.055, abs=0.01)

    def test_transition_up_to_900x_faster(self):
        """Abstract: up to 900x faster transition than C6 — we assert the
        three-orders-of-magnitude band."""
        speedup = transition_speedup(C6LatencyModel(), C6ALatencyModel())
        assert speedup >= 900 * 0.6  # same order of magnitude as claimed
        assert speedup <= 900 * 3

    def test_memcached_savings_up_to_70pct(self):
        """Abstract: reduces Memcached energy by up to 71%."""
        base = simulate(
            memcached_workload(), named_configuration("NT_No_C6_No_C1E"),
            qps=10_000, horizon=0.2, seed=42,
        )
        aw = simulate(
            memcached_workload(), named_configuration("NT_C6A_No_C6_No_C1E"),
            qps=10_000, horizon=0.2, seed=42,
        )
        savings = (base.avg_core_power - aw.avg_core_power) / base.avg_core_power
        assert savings >= 0.6

    def test_end_to_end_degradation_under_1pct(self):
        """Abstract: < 1% end-to-end performance degradation."""
        base = simulate(
            memcached_workload(), named_configuration("baseline"),
            qps=100_000, horizon=0.15, seed=42,
        )
        aw = simulate(
            memcached_workload(), named_configuration("AW"),
            qps=100_000, horizon=0.15, seed=42,
        )
        degradation = (aw.avg_latency_e2e - base.avg_latency_e2e) / base.avg_latency_e2e
        assert degradation < 0.01


class TestSection2Claims:
    def test_ideal_savings_23_41_55(self):
        """Sec 2: Eq. 1 bounds are 23% / 41% / 55% for the examples."""
        assert ideal_savings({"C0": 0.50, "C1": 0.45, "C6": 0.05}) == pytest.approx(0.23, abs=0.005)
        assert ideal_savings({"C0": 0.25, "C1": 0.55, "C6": 0.20}) == pytest.approx(0.41, abs=0.005)
        assert ideal_savings({"C0": 0.20, "C1": 0.80, "C6": 0.00}) == pytest.approx(0.55, abs=0.005)


class TestSection5Claims:
    def test_entry_exit_budgets(self, design):
        """Sec 5.2: entry < 20 ns, exit < 80 ns, round trip < 100 ns."""
        assert design.flow.entry_latency < 20e-9
        assert design.flow.exit_latency < 80e-9
        assert design.hardware_round_trip < 100e-9

    def test_staggered_wake_under_70ns(self, design):
        """Sec 5.3: five zones wake in < 70 ns (4.5 x 15 ns)."""
        assert design.ufpg.wake_latency < 70e-9
        assert design.ufpg.wake_latency == pytest.approx(67.5e-9, rel=0.01)

    def test_table3_overall_bands(self, design):
        """Table 3: C6A 290-315 mW, C6AE 227-243 mW, 3-7% core area."""
        low, high = design.breakdown.total_power_range("C6A")
        assert (low, high) == pytest.approx((0.290, 0.315), rel=0.03)
        low_e, high_e = design.breakdown.total_power_range("C6AE")
        assert (low_e, high_e) == pytest.approx((0.227, 0.243), rel=0.04)
        area_low, area_high = design.breakdown.area_overhead_range
        assert 0.01 <= area_low <= 0.03
        assert 0.05 <= area_high <= 0.08

    def test_c6_entry_dominated_by_flush(self):
        """Sec 3: flush ~75 us of the ~87 us C6 entry at 50% dirty."""
        model = C6LatencyModel()
        breakdown = model.breakdown()
        assert breakdown["flush_l1_l2"] == pytest.approx(75e-6, rel=0.05)
        assert model.entry_latency == pytest.approx(87e-6, rel=0.02)


class TestSection6Claims:
    def test_power_model_accuracy_above_94pct(self):
        """Sec 6.3: model accuracy 94.4-96.1% across four workloads."""
        for result in validate_power_model():
            assert 94.0 <= result.accuracy_percent <= 96.5


class TestSection7Claims:
    def test_memcached_never_deep_at_high_load(self):
        """Sec 2/7: at high load, cores never go deeper than C1."""
        result = simulate(
            memcached_workload(), named_configuration("baseline"),
            qps=500_000, horizon=0.1, seed=42,
        )
        assert result.residency_of("C6") < 0.01
        assert result.residency_of("C1") + result.residency_of("C0") > 0.8

    def test_savings_decline_with_load(self):
        """Fig 8b: AW savings shrink as load grows."""
        savings = []
        for qps in (20_000, 200_000, 450_000):
            base = simulate(memcached_workload(), named_configuration("baseline"),
                            qps=qps, horizon=0.1, seed=42)
            aw = simulate(memcached_workload(), named_configuration("AW"),
                          qps=qps, horizon=0.1, seed=42)
            savings.append((base.avg_core_power - aw.avg_core_power) / base.avg_core_power)
        assert savings[0] > savings[1] > savings[2]
        assert savings[2] > 0.05  # still ~10% at high load

    def test_snoop_worst_case_loses_11pp(self):
        """Sec 7.5: 79% -> 68% under saturating snoops."""
        bounds = snoop_bounds()
        assert bounds.savings_no_snoops == pytest.approx(0.79, abs=0.01)
        assert bounds.savings_full_snoops == pytest.approx(0.68, abs=0.01)
        assert bounds.savings_loss == pytest.approx(0.11, abs=0.01)

    def test_c1e_tradeoff_exists(self):
        """Sec 7.2: disabling C1E lowers latency but raises power —
        the tension C6A resolves."""
        with_c1e = simulate(memcached_workload(), named_configuration("NT_No_C6"),
                            qps=100_000, horizon=0.1, seed=42)
        without = simulate(memcached_workload(), named_configuration("NT_No_C6_No_C1E"),
                           qps=100_000, horizon=0.1, seed=42)
        assert without.avg_latency < with_c1e.avg_latency
        assert without.avg_core_power > with_c1e.avg_core_power

    def test_c6a_resolves_the_tradeoff(self):
        """Sec 7.2: C6A gets No_C1E's latency at better-than-C1E power."""
        no_c1e = simulate(memcached_workload(), named_configuration("NT_No_C6_No_C1E"),
                          qps=100_000, horizon=0.1, seed=42)
        aw = simulate(memcached_workload(), named_configuration("NT_C6A_No_C6_No_C1E"),
                      qps=100_000, horizon=0.1, seed=42)
        # Latency within 1% of the latency-optimal config...
        assert aw.avg_latency_e2e < no_c1e.avg_latency_e2e * 1.01
        # ...at far lower power.
        assert aw.avg_core_power < no_c1e.avg_core_power * 0.6


class TestDesignVerification:
    def test_all_architecture_invariants(self, design):
        """The assembled design satisfies every Sec 4/5 invariant."""
        checks = design.verify()
        assert all(checks.values()), {k: v for k, v in checks.items() if not v}
