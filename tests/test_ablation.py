"""Tests for the AW idea ablations."""

import pytest

from repro.core.ablation import AblationStudy
from repro.errors import ConfigurationError
from repro.units import US


@pytest.fixture(scope="module")
def study():
    return AblationStudy()


class TestVariants:
    def test_five_variants(self, study):
        names = [v.name for v in study.variants()]
        assert names == [
            "full",
            "no_inplace_retention",
            "no_cache_sleep_mode",
            "no_kept_pll",
            "legacy_c6",
        ]

    def test_full_design_is_fastest(self, study):
        variants = study.variants()
        full = variants[0]
        for other in variants[1:]:
            assert other.round_trip > full.round_trip

    def test_full_design_under_100ns(self, study):
        assert study.full_design().round_trip < 100e-9

    def test_every_ablation_is_microseconds(self, study):
        # Removing ANY single idea pushes the transition to us scale:
        # each idea is individually necessary for nanosecond transitions.
        for variant in study.variants()[1:4]:
            assert variant.round_trip > 1 * US

    def test_legacy_c6_slowest(self, study):
        variants = study.variants()
        assert max(v.round_trip for v in variants) == variants[-1].round_trip


class TestPerIdeaCosts:
    def test_retention_ablation_adds_serialisation_both_ways(self, study):
        full = study.full_design()
        ablated = study.without_inplace_retention()
        extra_entry = ablated.entry_latency - full.entry_latency
        extra_exit = ablated.exit_latency - full.exit_latency
        assert extra_entry == pytest.approx(9 * US, rel=0.05)
        assert extra_exit == pytest.approx(9 * US, rel=0.05)

    def test_cache_ablation_adds_flush_on_entry_only(self, study):
        full = study.full_design()
        ablated = study.without_cache_sleep_mode()
        assert ablated.entry_latency - full.entry_latency == pytest.approx(
            75 * US, rel=0.05
        )
        assert ablated.exit_latency == full.exit_latency

    def test_pll_ablation_adds_relock_on_exit_only(self, study):
        full = study.full_design()
        ablated = study.without_kept_pll()
        assert ablated.exit_latency - full.exit_latency == pytest.approx(5 * US)
        assert ablated.entry_latency == full.entry_latency

    def test_cache_sleep_mode_is_biggest_saver(self, study):
        # The flush is the dominant C6 cost, so CCSM saves the most.
        contributions = study.latency_contributions()
        assert contributions["cache_sleep_mode"] == max(contributions.values())
        assert all(v > 0 for v in contributions.values())


class TestPowerSide:
    def test_ablations_trade_latency_for_power(self, study):
        # Every ablated variant idles cheaper than full C6A (that's the
        # trade AW consciously declines).
        full = study.full_design()
        for variant in study.variants()[1:]:
            assert variant.idle_power < full.idle_power

    def test_full_power_is_c6a(self, study):
        assert study.full_design().idle_power == pytest.approx(0.3, rel=0.05)

    def test_slowdown_vs(self, study):
        full = study.full_design()
        c6 = study.c6_reference()
        assert c6.slowdown_vs(full) > 500

    def test_slowdown_vs_zero_reference_rejected(self, study):
        from repro.core.ablation import AblatedVariant

        zero = AblatedVariant("z", 0.0, 0.0, 0.1)
        with pytest.raises(ConfigurationError):
            study.full_design().slowdown_vs(zero)


class TestExperimentModule:
    def test_run_returns_variants(self):
        from repro.experiments import ablation

        assert len(ablation.run()) == 5

    def test_main_prints(self, capsys):
        from repro.experiments import ablation

        ablation.main()
        out = capsys.readouterr().out
        assert "Ablation" in out
        assert "no_cache_sleep_mode" in out
