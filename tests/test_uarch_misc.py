"""Tests for caches, coherence, turbo and package models."""

import pytest

from repro.core.cstates import FrequencyPoint, skylake_baseline_catalog
from repro.errors import ConfigurationError, SimulationError
from repro.uarch import (
    Core,
    Package,
    PackageConfig,
    PrivateCaches,
    SnoopModel,
    SnoopTrafficGenerator,
    TurboBudget,
    TurboConfig,
)
from repro.units import MHZ, US


class TestPrivateCaches:
    def test_dirtiness_grows_with_requests(self):
        caches = PrivateCaches(write_fraction=1.0)
        before = caches.dirty_fraction
        for _ in range(10):
            caches.record_request()
        assert caches.dirty_fraction > before

    def test_dirtiness_saturates(self):
        caches = PrivateCaches(write_fraction=1.0, max_dirty_fraction=0.5)
        for _ in range(10_000):
            caches.record_request()
        assert caches.dirty_fraction == pytest.approx(0.5)

    def test_read_only_workload_stays_clean(self):
        caches = PrivateCaches(write_fraction=0.0)
        before = caches.dirty_fraction
        for _ in range(100):
            caches.record_request()
        assert caches.dirty_fraction == before

    def test_flush_resets_dirtiness_and_counts(self):
        caches = PrivateCaches()
        duration = caches.flush(800 * MHZ)
        assert duration > 0
        assert caches.dirty_fraction == 0.0
        assert caches.flush_count == 1

    def test_flush_time_tracks_dirtiness(self):
        dirty = PrivateCaches()
        clean = PrivateCaches()
        clean.flush(800 * MHZ)
        assert clean.flush_time(800 * MHZ) < dirty.flush_time(800 * MHZ)

    def test_warm_refill(self):
        caches = PrivateCaches()
        caches.flush(800 * MHZ)
        caches.reset_after_refill(0.25)
        assert caches.dirty_fraction == 0.25

    def test_bad_warm_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivateCaches().reset_after_refill(0.9)

    def test_bad_write_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivateCaches(write_fraction=1.5)


class TestSnoopModel:
    def test_c1_delta_50mw(self):
        assert SnoopModel().power_delta_for("C1") == pytest.approx(0.05)

    def test_c6a_delta_170mw(self):
        assert SnoopModel().power_delta_for("C6A") == pytest.approx(0.17)

    def test_c6_sees_no_snoops(self):
        m = SnoopModel()
        assert not m.sees_snoops("C6")
        assert m.power_delta_for("C6") == 0.0

    def test_coherent_states_see_snoops(self):
        m = SnoopModel()
        for name in ("C1", "C1E", "C6A", "C6AE"):
            assert m.sees_snoops(name)

    def test_from_ccsm_derives_deltas(self):
        from repro.core.ccsm import CCSM

        m = SnoopModel.from_ccsm(CCSM())
        assert m.c1_power_delta == pytest.approx(0.05)
        assert m.c6a_power_delta == pytest.approx(0.17)

    def test_negative_service_time_rejected(self):
        with pytest.raises(ConfigurationError):
            SnoopModel(service_time=-1.0)


class TestSnoopTrafficGenerator:
    def test_zero_rate_generates_nothing(self):
        gen = SnoopTrafficGenerator(0.0)
        assert gen.next_arrival_delay() is None

    def test_positive_rate_generates_delays(self):
        gen = SnoopTrafficGenerator(1000.0, seed=1)
        delays = [gen.next_arrival_delay() for _ in range(100)]
        assert all(d > 0 for d in delays)
        mean = sum(delays) / len(delays)
        assert mean == pytest.approx(1e-3, rel=0.5)

    def test_duty_cycle(self):
        gen = SnoopTrafficGenerator(1000.0)
        duty = gen.expected_duty_cycle(SnoopModel(service_time=100 * US))
        assert duty == pytest.approx(0.1)

    def test_duty_cycle_capped_at_one(self):
        gen = SnoopTrafficGenerator(1e9)
        assert gen.expected_duty_cycle(SnoopModel()) == 1.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            SnoopTrafficGenerator(-1.0)


class TestTurboBudget:
    def test_starts_full(self):
        assert TurboBudget().level_fraction == 1.0

    def test_grants_when_full(self):
        budget = TurboBudget()
        freq = budget.frequency_for_burst(0.0, package_power=40.0)
        assert freq is FrequencyPoint.TURBO
        assert budget.grants == 1

    def test_disabled_never_grants(self):
        budget = TurboBudget(enabled=False)
        assert budget.frequency_for_burst(0.0, 10.0) is FrequencyPoint.P1

    def test_drains_above_sustained_power(self):
        config = TurboConfig(sustained_watts=50.0, tank_joules=1.0)
        budget = TurboBudget(config)
        budget.update(0.0, package_power=60.0)  # record high power
        budget.update(0.2, package_power=60.0)  # drain 10 W x 0.2 s = 2 J
        assert budget.level_fraction == 0.0

    def test_denies_when_empty(self):
        config = TurboConfig(sustained_watts=50.0, tank_joules=1.0)
        budget = TurboBudget(config)
        budget.update(0.0, 70.0)
        budget.update(1.0, 70.0)
        assert budget.frequency_for_burst(1.0, 70.0) is FrequencyPoint.P1
        assert budget.denials == 1

    def test_refills_below_sustained_power(self):
        config = TurboConfig(sustained_watts=50.0, tank_joules=1.0)
        budget = TurboBudget(config)
        budget.update(0.0, 70.0)
        budget.update(1.0, 30.0)  # drained empty, now filling
        budget.update(2.0, 30.0)  # +20 J, clamped to tank
        assert budget.level_fraction == 1.0

    def test_lower_idle_power_refills_faster(self):
        # The Sec 7.3 mechanism: C6A idle power refills headroom faster
        # than C1 idle power.
        config = TurboConfig(sustained_watts=50.0, tank_joules=100.0)
        c1_idle = TurboBudget(config)
        c6a_idle = TurboBudget(config)
        for b, idle_power in ((c1_idle, 48.0), (c6a_idle, 40.0)):
            b.update(0.0, 70.0)
            b.update(2.0, idle_power)  # drain empty
            b.update(4.0, idle_power)  # refill at (50 - idle_power)
        assert c6a_idle.level_fraction > c1_idle.level_fraction

    def test_time_backwards_rejected(self):
        budget = TurboBudget()
        budget.update(1.0, 10.0)
        with pytest.raises(SimulationError):
            budget.update(0.5, 10.0)

    def test_grant_rate(self):
        budget = TurboBudget()
        budget.frequency_for_burst(0.0, 10.0)
        assert budget.grant_rate == 1.0

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            TurboConfig(sustained_watts=0.0)
        with pytest.raises(ConfigurationError):
            TurboConfig(grant_threshold=2.0)


class TestPackage:
    def _cores(self, n=10):
        catalog = skylake_baseline_catalog()
        return [Core(i, catalog) for i in range(n)]

    def test_package_power_includes_uncore(self):
        pkg = Package(self._cores(), PackageConfig(cores=10, uncore_watts=38.0))
        assert pkg.package_power == pytest.approx(10 * 4.0 + 38.0)

    def test_core_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Package(self._cores(5), PackageConfig(cores=10))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Package([], PackageConfig(cores=1))

    def test_average_package_power(self):
        cores = self._cores(2)
        pkg = Package(cores, PackageConfig(cores=2, uncore_watts=10.0))
        avg = pkg.average_package_power(2.0)
        assert avg == pytest.approx(2 * 4.0 + 10.0)

    def test_core_power_sums_cores(self):
        pkg = Package(self._cores(3), PackageConfig(cores=3))
        assert pkg.core_power == pytest.approx(12.0)
