"""Cross-module property-based tests (hypothesis).

These check conservation laws and monotonicities that must hold for *any*
parameterisation, not just the paper's design point.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analytical import AgileWattsPowerModel, average_power
from repro.core.cstates import skylake_baseline_catalog
from repro.core.latency import CacheFlushModel
from repro.errors import SimulationError
from repro.power.powergate import make_ufpg_zones
from repro.server import named_configuration, simulate
from repro.simkit.distributions import Degenerate
from repro.uarch import Core
from repro.units import US
from repro.workloads.base import ServiceTimeModel, Workload


# -- residency conservation --------------------------------------------------

@given(
    spans=st.lists(
        st.tuples(
            st.floats(min_value=1e-6, max_value=1.0),  # busy span
            st.floats(min_value=1e-6, max_value=1.0),  # idle span
            st.sampled_from(["C1", "C1E", "C6"]),
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=50, deadline=None)
def test_core_residency_conserves_time(spans):
    """Whatever the transition sequence, residencies sum to wall time."""
    catalog = skylake_baseline_catalog()
    core = Core(0, catalog)
    t = 0.0
    for busy, idle, state in spans:
        t += busy
        core.enter_idle(t, catalog.get(state))
        t += idle
        core.wake(t)
    stats = core.snapshot(t + 0.1)
    assert sum(stats.residency_seconds.values()) == pytest.approx(t + 0.1)


@given(
    spans=st.lists(
        st.tuples(
            st.floats(min_value=1e-6, max_value=1.0),
            st.floats(min_value=1e-6, max_value=1.0),
            st.sampled_from(["C1", "C1E", "C6"]),
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=50, deadline=None)
def test_core_energy_bounded_by_extremes(spans):
    """Average power always lies between the cheapest and dearest state."""
    catalog = skylake_baseline_catalog()
    core = Core(0, catalog)
    t = 0.0
    for busy, idle, state in spans:
        t += busy
        core.enter_idle(t, catalog.get(state))
        t += idle
        core.wake(t)
    stats = core.snapshot(t + 0.01)
    assert 0.1 - 1e-9 <= stats.average_power <= 5.5 + 1e-9


# -- Eq. 2 / Eq. 3 invariants ---------------------------------------------------

@st.composite
def residency_vectors(draw):
    parts = [draw(st.floats(min_value=0.0, max_value=1.0)) for _ in range(4)]
    total = sum(parts)
    if total == 0:
        parts = [1.0, 0.0, 0.0, 0.0]
        total = 1.0
    names = ["C0", "C1", "C1E", "C6"]
    return {n: p / total for n, p in zip(names, parts)}


@given(residency=residency_vectors())
@settings(max_examples=100)
def test_aw_model_never_increases_power(residency):
    """Eq. 3 with zero overheads can only reduce Eq. 2's power: C6A/C6AE
    are strictly cheaper than C1/C1E."""
    model = AgileWattsPowerModel(frequency_scalability=0.0)
    base = average_power(residency)
    aw = model.average_power(residency)
    assert aw <= base + 1e-12


@given(residency=residency_vectors())
@settings(max_examples=100)
def test_rescaling_preserves_probability_mass(residency):
    model = AgileWattsPowerModel(frequency_scalability=1.0)
    rescaled = model.rescale_residency(
        residency, transitions_per_second={"C1": 50_000.0}
    )
    assert sum(rescaled.values()) == pytest.approx(1.0)
    assert all(v >= -1e-12 for v in rescaled.values())


@given(residency=residency_vectors())
@settings(max_examples=100)
def test_substitution_is_mass_preserving_bijection_on_power_states(residency):
    out = AgileWattsPowerModel.substitute_states(residency)
    assert sum(out.values()) == pytest.approx(sum(residency.values()))
    assert "C1" not in out and "C1E" not in out


# -- flush model ----------------------------------------------------------------

@given(
    dirty_a=st.floats(min_value=0.0, max_value=1.0),
    dirty_b=st.floats(min_value=0.0, max_value=1.0),
    freq=st.floats(min_value=1e8, max_value=4e9),
)
@settings(max_examples=100)
def test_flush_monotone_in_dirtiness(dirty_a, dirty_b, freq):
    flush = CacheFlushModel()
    lo, hi = sorted((dirty_a, dirty_b))
    assert flush.flush_time(lo, freq) <= flush.flush_time(hi, freq) + 1e-15


# -- zone splitting -----------------------------------------------------------------

@given(
    zones=st.integers(min_value=5, max_value=64),
    area=st.floats(min_value=0.5, max_value=4.5),
)
@settings(max_examples=100)
def test_zone_split_conserves_area(zones, area):
    made = make_ufpg_zones(total_relative_area=area, zones=zones)
    assert sum(z.relative_area for z in made) == pytest.approx(area)
    assert all(z.relative_area <= 1.0 + 1e-9 for z in made)


# -- end-to-end simulation invariants ------------------------------------------------

def _tiny_workload():
    service = ServiceTimeModel(
        scalable=Degenerate(4 * US), fixed=Degenerate(6 * US)
    )
    return Workload("tiny", service, snoop_rate_hz=0.0)


@given(
    qps=st.sampled_from([5_000, 50_000, 200_000]),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_simulation_invariants_hold_for_any_seed(qps, seed):
    """For any seed and load: residency sums to 1, power is bounded,
    latency is at least the service time."""
    result = simulate(
        _tiny_workload(), named_configuration("baseline"),
        qps=qps, horizon=0.03, seed=seed,
    )
    assert sum(result.residency.values()) == pytest.approx(1.0, abs=1e-6)
    assert 0.0 < result.avg_core_power <= 5.5
    if result.completed:
        assert result.avg_latency >= 10 * US * 0.7  # service-time floor


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_aw_saves_power_for_any_seed(seed):
    """AW beats the baseline hierarchy on power at moderate load for any
    seed — the core claim is not a seed artifact."""
    base = simulate(_tiny_workload(), named_configuration("NT_Baseline"),
                    qps=100_000, horizon=0.03, seed=seed)
    aw = simulate(_tiny_workload(), named_configuration("NT_AW"),
                  qps=100_000, horizon=0.03, seed=seed)
    assert aw.avg_core_power < base.avg_core_power
