"""Shared test fixtures.

CLI commands open the persistent result store at ``$REPRO_CACHE_DIR`` by
default, so tests must never point it at the developer's real
``~/.cache/repro`` — results written by a test run would then leak into
(and stale results leak out of) interactive use. Redirect it to a
throwaway directory at import time, before any test builds a store.
"""

import atexit
import os
import shutil
import tempfile

import pytest

_cache_dir = tempfile.mkdtemp(prefix="repro-test-cache-")
os.environ["REPRO_CACHE_DIR"] = _cache_dir
atexit.register(shutil.rmtree, _cache_dir, True)


@pytest.fixture
def failing_workload():
    """Register a workload whose factory always raises; clean up after."""
    from repro.sweep.spec import WORKLOAD_FACTORIES, register_workload

    def factory():
        raise RuntimeError("kaboom")

    register_workload("explosive", factory)
    yield "explosive"
    del WORKLOAD_FACTORIES["explosive"]
