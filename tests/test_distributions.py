"""Tests for seeded random distributions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.simkit import (
    Degenerate,
    EmpiricalDistribution,
    Exponential,
    LogNormal,
    MixtureDistribution,
    Pareto,
    Uniform,
    make_distribution,
)


class TestDegenerate:
    def test_always_returns_value(self):
        d = Degenerate(3.5)
        assert all(d.sample() == 3.5 for _ in range(10))

    def test_mean(self):
        assert Degenerate(2.0).mean == 2.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Degenerate(-1.0)


class TestExponential:
    def test_mean_property(self):
        assert Exponential(2.0).mean == 2.0

    def test_empirical_mean_close(self):
        d = Exponential(1.0, seed=3)
        samples = d.sample_many(20000)
        assert sum(samples) / len(samples) == pytest.approx(1.0, rel=0.05)

    def test_non_negative(self):
        d = Exponential(0.5, seed=1)
        assert all(s >= 0 for s in d.sample_many(1000))

    def test_seeded_reproducibility(self):
        a = Exponential(1.0, seed=9).sample_many(100)
        b = Exponential(1.0, seed=9).sample_many(100)
        assert a == b

    def test_different_seeds_differ(self):
        a = Exponential(1.0, seed=1).sample_many(10)
        b = Exponential(1.0, seed=2).sample_many(10)
        assert a != b

    def test_zero_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            Exponential(0.0)


class TestUniform:
    def test_bounds(self):
        d = Uniform(1.0, 2.0, seed=5)
        assert all(1.0 <= s < 2.001 for s in d.sample_many(1000))

    def test_mean(self):
        assert Uniform(1.0, 3.0).mean == 2.0

    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Uniform(2.0, 1.0)
        with pytest.raises(ConfigurationError):
            Uniform(-1.0, 1.0)


class TestLogNormal:
    def test_mean_parameterisation(self):
        d = LogNormal(mean=10e-6, sigma=0.6, seed=2)
        samples = d.sample_many(50000)
        assert sum(samples) / len(samples) == pytest.approx(10e-6, rel=0.05)

    def test_zero_sigma_degenerates(self):
        d = LogNormal(mean=5.0, sigma=0.0)
        assert d.sample() == 5.0

    def test_right_skew(self):
        d = LogNormal(mean=1.0, sigma=1.0, seed=4)
        samples = sorted(d.sample_many(10000))
        median = samples[len(samples) // 2]
        assert median < 1.0  # mean > median for right-skewed

    def test_negative_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            LogNormal(mean=-1.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            LogNormal(mean=1.0, sigma=-0.1)


class TestPareto:
    def test_mean_parameterisation(self):
        d = Pareto(mean=2.0, alpha=3.0, seed=6)
        samples = d.sample_many(100000)
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.1)

    def test_minimum_is_xm(self):
        d = Pareto(mean=2.0, alpha=2.0, seed=7)
        xm = 2.0 * (2.0 - 1.0) / 2.0
        assert min(d.sample_many(1000)) >= xm

    def test_alpha_at_most_one_rejected(self):
        with pytest.raises(ConfigurationError):
            Pareto(mean=1.0, alpha=1.0)

    def test_heavy_tail(self):
        d = Pareto(mean=1.0, alpha=2.1, seed=8)
        samples = d.sample_many(100000)
        assert max(samples) > 10 * d.mean


class TestEmpirical:
    def test_samples_from_observations(self):
        obs = [1.0, 2.0, 3.0]
        d = EmpiricalDistribution(obs, seed=1)
        assert all(s in obs for s in d.sample_many(100))

    def test_mean(self):
        assert EmpiricalDistribution([1.0, 3.0]).mean == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            EmpiricalDistribution([])

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            EmpiricalDistribution([1.0, -1.0])


class TestMixture:
    def test_mean_is_weighted(self):
        d = MixtureDistribution(
            [(1.0, Degenerate(0.0)), (1.0, Degenerate(2.0))], seed=1
        )
        assert d.mean == pytest.approx(1.0)

    def test_samples_come_from_components(self):
        d = MixtureDistribution(
            [(0.5, Degenerate(1.0)), (0.5, Degenerate(2.0))], seed=2
        )
        assert set(d.sample_many(200)) == {1.0, 2.0}

    def test_weights_normalised(self):
        d = MixtureDistribution(
            [(10.0, Degenerate(1.0)), (30.0, Degenerate(5.0))], seed=3
        )
        assert d.mean == pytest.approx(0.25 * 1.0 + 0.75 * 5.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MixtureDistribution([])

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            MixtureDistribution([(0.0, Degenerate(1.0))])


class TestFactory:
    def test_builds_exponential(self):
        d = make_distribution("exponential", mean=2.0, seed=7)
        assert isinstance(d, Exponential)
        assert d.mean == 2.0

    def test_builds_all_kinds(self):
        assert isinstance(make_distribution("degenerate", value=1.0), Degenerate)
        assert isinstance(make_distribution("uniform", low=0, high=1), Uniform)
        assert isinstance(make_distribution("lognormal", mean=1.0), LogNormal)
        assert isinstance(make_distribution("pareto", mean=1.0), Pareto)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_distribution("zipf", mean=1.0)


class TestPropertyBased:
    @given(mean=st.floats(min_value=1e-9, max_value=1e3))
    @settings(max_examples=50)
    def test_exponential_samples_non_negative(self, mean):
        d = Exponential(mean, seed=0)
        assert all(s >= 0 for s in d.sample_many(20))

    @given(
        mean=st.floats(min_value=1e-6, max_value=100.0),
        sigma=st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=50)
    def test_lognormal_positive(self, mean, sigma):
        d = LogNormal(mean=mean, sigma=sigma, seed=0)
        assert all(s > 0 for s in d.sample_many(20))

    @given(n=st.integers(min_value=0, max_value=100))
    @settings(max_examples=20)
    def test_sample_many_length(self, n):
        assert len(Degenerate(1.0).sample_many(n)) == n
