"""Tests for the CONC-series process-boundary analysis.

Fixture modules live under ``<tmp>/repro/<package>/...`` like the rest
of the analyzer tests, so :mod:`repro.analyze.callgraph` resolves their
dotted names (``repro.sweep.driver`` ...) exactly like real simulation
code and cross-module from-imports link up.
"""

import os
import shutil

from repro.analyze import run_conc_checks, run_lint, rule_catalog
from repro.analyze.callgraph import CallGraph
from repro.analyze.engine import discover_files

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src", "repro"
)
REAL_RUNNER = os.path.join(REPO_SRC, "sweep", "runner.py")


def write_module(tmp_path, rel, source):
    path = tmp_path / "repro" / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return str(path)


def conc_one(tmp_path, rel, source):
    return run_conc_checks([write_module(tmp_path, rel, source)])


def rule_ids(findings):
    return sorted(f.rule_id for f in findings)


# -- catalog ----------------------------------------------------------------
def test_conc_rules_registered():
    ids = {rule_id for rule_id, _, _ in rule_catalog()}
    assert {"CONC001", "CONC002", "CONC003", "CONC004"} <= ids


# -- CONC001: unpicklable callables and captures ----------------------------
def test_conc001_lambda_submit(tmp_path):
    findings = conc_one(
        tmp_path, "sweep/driver.py",
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def parent():\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        pool.submit(lambda: 1)\n",
    )
    assert rule_ids(findings) == ["CONC001"]
    assert findings[0].line == 5
    assert "lambda" in findings[0].message


def test_conc001_locally_defined_function(tmp_path):
    findings = conc_one(
        tmp_path, "sweep/driver.py",
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def parent():\n"
        "    def work():\n"
        "        return 1\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        pool.submit(work)\n",
    )
    assert rule_ids(findings) == ["CONC001"]
    assert "locally defined function 'work'" in findings[0].message


def test_conc001_threading_lock_argument(tmp_path):
    findings = conc_one(
        tmp_path, "sweep/driver.py",
        "import threading\n"
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def work(lock):\n"
        "    pass\n"
        "\n"
        "def parent():\n"
        "    lock = threading.Lock()\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        pool.submit(work, lock)\n",
    )
    assert rule_ids(findings) == ["CONC001"]
    assert "threading.Lock" in findings[0].message


def test_conc001_process_target_lambda(tmp_path):
    findings = conc_one(
        tmp_path, "sweep/driver.py",
        "import multiprocessing\n"
        "\n"
        "def parent():\n"
        "    p = multiprocessing.Process(target=lambda: 1)\n"
        "    p.start()\n",
    )
    assert rule_ids(findings) == ["CONC001"]
    assert "multiprocessing.Process" in findings[0].message


def test_conc001_map_only_on_pool_receivers(tmp_path):
    # .map on a pool-bound name is a boundary; .map on anything else
    # (pandas-style) is not.
    findings = conc_one(
        tmp_path, "sweep/driver.py",
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def parent(xs, series):\n"
        "    series.map(lambda x: x)\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        pool.map(lambda x: x, xs)\n",
    )
    assert rule_ids(findings) == ["CONC001"]
    assert findings[0].line == 6


def test_conc001_clean_module_level_function(tmp_path):
    findings = conc_one(
        tmp_path, "sweep/driver.py",
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def work(seed):\n"
        "    return seed * 2\n"
        "\n"
        "def parent(seeds):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return [pool.submit(work, s) for s in seeds]\n",
    )
    assert findings == []


# -- CONC002: worker-written, parent-read module globals --------------------
def test_conc002_worker_write_parent_read(tmp_path):
    findings = conc_one(
        tmp_path, "sweep/driver.py",
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "RESULTS = []\n"
        "\n"
        "def work(x):\n"
        "    RESULTS.append(x)\n"
        "\n"
        "def parent(xs):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        for x in xs:\n"
        "            pool.submit(work, x)\n"
        "    return RESULTS\n",
    )
    assert rule_ids(findings) == ["CONC002"]
    assert findings[0].line == 6  # anchored at the worker-side write
    assert "'RESULTS'" in findings[0].message


def test_conc002_parent_write_worker_read_is_fine(tmp_path):
    # The warm-cache direction: the parent populates before the fork,
    # workers only read. Legitimate and unflagged.
    findings = conc_one(
        tmp_path, "sweep/driver.py",
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "CACHE = {}\n"
        "\n"
        "def work(x):\n"
        "    return CACHE.get(x)\n"
        "\n"
        "def parent(xs):\n"
        "    CACHE[0] = 'warm'\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        for x in xs:\n"
        "            pool.submit(work, x)\n",
    )
    assert findings == []


def test_conc002_cross_module_reachability(tmp_path):
    # The write happens two modules away from the submit: driver submits
    # work, work calls helpers.record, record writes helpers.SEEN which
    # helpers.report (parent-side) reads.
    write_module(
        tmp_path, "sweep/helpers.py",
        "SEEN = []\n"
        "\n"
        "def record(x):\n"
        "    SEEN.append(x)\n"
        "\n"
        "def report():\n"
        "    return list(SEEN)\n",
    )
    driver = write_module(
        tmp_path, "sweep/driver.py",
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "from repro.sweep.helpers import record\n"
        "\n"
        "def work(x):\n"
        "    record(x)\n"
        "\n"
        "def parent(xs):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        for x in xs:\n"
        "            pool.submit(work, x)\n",
    )
    findings = run_conc_checks(
        [driver, str(tmp_path / "repro" / "sweep" / "helpers.py")]
    )
    assert rule_ids(findings) == ["CONC002"]
    assert findings[0].path.endswith("helpers.py")
    assert findings[0].line == 4


# -- CONC003: RNG / Simulator across the fork -------------------------------
def test_conc003_module_rng_used_both_sides(tmp_path):
    findings = conc_one(
        tmp_path, "sweep/driver.py",
        "import random\n"
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "RNG = random.Random(42)\n"
        "\n"
        "def work(x):\n"
        "    return x + RNG.random()\n"
        "\n"
        "def parent():\n"
        "    base = RNG.random()\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        pool.submit(work, base)\n",
    )
    assert rule_ids(findings) == ["CONC003"]
    assert findings[0].line == 4  # anchored at the shared binding


def test_conc003_rng_as_submit_argument(tmp_path):
    findings = conc_one(
        tmp_path, "sweep/driver.py",
        "import random\n"
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def work(rng):\n"
        "    return rng.random()\n"
        "\n"
        "def parent():\n"
        "    rng = random.Random(7)\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        pool.submit(work, rng)\n",
    )
    assert rule_ids(findings) == ["CONC003"]
    assert "random.Random" in findings[0].message


def test_conc003_passing_seed_is_fine(tmp_path):
    findings = conc_one(
        tmp_path, "sweep/driver.py",
        "import random\n"
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def work(seed):\n"
        "    return random.Random(seed).random()\n"
        "\n"
        "def parent(seed):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        pool.submit(work, seed)\n",
    )
    assert findings == []


# -- CONC004: parent-only imports in worker-reachable code ------------------
def test_conc004_function_level_import(tmp_path):
    findings = conc_one(
        tmp_path, "sweep/driver.py",
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def work(x):\n"
        "    import argparse\n"
        "    return x\n"
        "\n"
        "def parent(x):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        pool.submit(work, x)\n",
    )
    assert rule_ids(findings) == ["CONC004"]
    assert findings[0].line == 4
    assert "'argparse'" in findings[0].message


def test_conc004_entry_module_import_time(tmp_path):
    findings = conc_one(
        tmp_path, "sweep/driver.py",
        "import argparse\n"
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def work(x):\n"
        "    return x\n"
        "\n"
        "def parent(x):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        pool.submit(work, x)\n",
    )
    assert rule_ids(findings) == ["CONC004"]
    assert findings[0].line == 1
    assert "import time" in findings[0].message


def test_conc004_parent_side_import_is_fine(tmp_path):
    findings = conc_one(
        tmp_path, "cluster/driver.py",
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def work(x):\n"
        "    return x\n"
        "\n"
        "def parent(x):\n"
        "    import argparse  # parent-side: never crosses the boundary\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        pool.submit(work, x)\n",
    )
    assert findings == []


# -- engine integration ------------------------------------------------------
def test_conc_findings_respect_suppressions(tmp_path):
    path = write_module(
        tmp_path, "sweep/driver.py",
        "from concurrent.futures import ProcessPoolExecutor\n"
        "\n"
        "def parent():\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        pool.submit(lambda: 1)"
        "  # repro: allow[CONC001] fixture exercising the suppressor\n",
    )
    result = run_lint([path], project_checks=True)
    assert [f.rule_id for f in result.findings] == []
    assert [f.rule_id for f in result.suppressed] == ["CONC001"]


def test_real_tree_is_conc_clean():
    """Every real submission boundary (sweep runner, sharding, the
    analyzer's own pool) passes its own analysis."""
    files = discover_files([REPO_SRC])
    graph = CallGraph(files)
    # The analysis saw the real boundaries, it didn't vacuously pass.
    apis = sorted(site.api for site in graph.sites)
    assert "process" in apis and "submit" in apis and "map" in apis
    assert run_conc_checks(files) == []


def test_injected_lambda_fails_lint_with_anchor(tmp_path):
    """Acceptance: a lambda submission injected into the *real* sweep
    runner is caught, anchored to its exact file:line."""
    copy = tmp_path / "repro" / "sweep" / "runner.py"
    copy.parent.mkdir(parents=True, exist_ok=True)
    shutil.copy(REAL_RUNNER, copy)
    with open(copy, "a") as handle:
        handle.write(
            "\n\ndef _injected(pool, spec):\n"
            "    return pool.submit(lambda: spec)\n"
        )
    bad_line = len(open(copy).read().splitlines())
    findings = run_conc_checks([str(copy)])
    assert [f.rule_id for f in findings] == ["CONC001"]
    assert findings[0].line == bad_line
    assert findings[0].anchor.endswith(f"runner.py:{bad_line}:23")


def test_conc004_declared_worker_entry_module(tmp_path):
    """repro.distrib.worker is a declared worker entry point: bare
    spawned interpreters import it, so a module-level parent-only
    import is a finding even with no submission site in sight."""
    findings = conc_one(
        tmp_path, "distrib/worker.py",
        "import argparse\n"
        "\n"
        "def worker_main(queue_dir):\n"
        "    return 0\n",
    )
    assert rule_ids(findings) == ["CONC004"]
    assert findings[0].line == 1
    assert "'argparse'" in findings[0].message


def test_conc004_same_import_elsewhere_not_flagged(tmp_path):
    """The identical module body outside the declared entry set (and
    with no submission site) stays clean — the finding above is the
    WORKER_ENTRY_MODULES contract, not a blanket import ban."""
    findings = conc_one(
        tmp_path, "distrib/queue.py",
        "import argparse\n"
        "\n"
        "def worker_main(queue_dir):\n"
        "    return 0\n",
    )
    assert findings == []
