"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_USAGE,
    EXPERIMENT_IDS,
    build_parser,
    cmd_run,
    main,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_with_ids(self):
        args = build_parser().parse_args(["run", "table1", "table2"])
        assert args.ids == ["table1", "table2"]
        assert not args.all

    def test_run_all_flag(self):
        args = build_parser().parse_args(["run", "--all"])
        assert args.all

    def test_output_dir_flag(self):
        args = build_parser().parse_args(["run", "table1", "-o", "out"])
        assert args.output_dir == "out"

    def test_jobs_flag(self):
        args = build_parser().parse_args(["run", "--all", "--jobs", "4"])
        assert args.jobs == 4

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "--kqps", "10", "100"])
        assert args.command == "sweep"
        assert args.workload == ["memcached"]
        assert args.config == ["baseline"]
        assert args.kqps == [10.0, 100.0]

    def test_sweep_turbo_flags_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--kqps", "10", "--turbo", "--no-turbo"])

    def test_sweep_failure_flags(self):
        args = build_parser().parse_args([
            "sweep", "--kqps", "10", "--on-error", "skip",
            "--timeout", "5", "--retries", "2",
        ])
        assert args.on_error == "skip"
        assert args.timeout == 5.0
        assert args.retries == 2

    def test_cache_flags_on_run_and_sweep(self):
        run_args = build_parser().parse_args(["run", "table1", "--no-cache"])
        assert run_args.no_cache
        sweep_args = build_parser().parse_args(
            ["sweep", "--kqps", "10", "--cache-dir", "/tmp/x"]
        )
        assert sweep_args.cache_dir == "/tmp/x"
        assert not sweep_args.no_cache

    def test_grid_flag(self):
        args = build_parser().parse_args(["sweep", "--grid", "grid.jsonl"])
        assert args.grid == "grid.jsonl"


class TestCommands:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENT_IDS:
            assert experiment_id in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "table1", "motivation"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Eq. 1" in out

    def test_run_nothing_errors(self, capsys):
        assert main(["run"]) == EXIT_USAGE

    def test_unknown_id_is_usage_error(self, capsys):
        assert main(["run", "fig99"]) == EXIT_USAGE
        assert "fig99" in capsys.readouterr().err

    def test_output_dir_writes_files(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        assert cmd_run(["table2"], run_all=False, output_dir=out_dir) == 0
        path = os.path.join(out_dir, "table2.txt")
        assert os.path.exists(path)
        with open(path) as handle:
            assert "Table 2" in handle.read()

    def test_experiment_ids_all_importable(self):
        # Every registered experiment lives in an importable module; the
        # legacy one-module-per-id artifacts also keep their run()/main()
        # shims (the cluster family shares one module and has no shims).
        import importlib

        from repro.experiments.api import get_experiment_class

        for experiment_id in EXPERIMENT_IDS:
            module_name = get_experiment_class(experiment_id).__module__
            module = importlib.import_module(module_name)
            if module_name == f"repro.experiments.{experiment_id}":
                assert hasattr(module, "main")
                assert hasattr(module, "run")


class TestRunFormats:
    def test_format_json_is_parseable_array(self, capsys):
        assert main(["run", "table2", "--format", "json"]) == EXIT_OK
        data = json.loads(capsys.readouterr().out)
        assert isinstance(data, list) and len(data) == 1
        assert data[0]["experiment"] == "table2"
        assert len(data[0]["records"]) == 6
        assert data[0]["records"][0]["state"] == "C0"

    def test_format_jsonl_tags_records(self, capsys):
        assert main(["run", "table1", "table2", "--format", "jsonl"]) == EXIT_OK
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines() if line.strip()
        ]
        assert {record["experiment"] for record in lines} == {"table1", "table2"}
        assert all("state" in record for record in lines)

    def test_format_csv_golden(self, capsys):
        assert main(["run", "table2", "--format", "csv"]) == EXIT_OK
        lines = capsys.readouterr().out.splitlines()
        assert lines[0] == "state,clocks,adpll,l1l2_cache,voltage,context"
        assert lines[1] == "C0,running,on,coherent,active,maintained"
        assert len(lines) == 7

    def test_out_dir_writes_per_format_extension(self, tmp_path, capsys):
        out_dir = str(tmp_path / "records")
        code = main(["run", "table2", "--format", "jsonl", "--out", out_dir])
        assert code == EXIT_OK
        path = os.path.join(out_dir, "table2.jsonl")
        assert os.path.exists(path)
        with open(path) as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        assert len(records) == 6

    def test_quick_sim_experiment_emits_structured_records(self, tmp_path, capsys):
        out_dir = str(tmp_path / "quick")
        code = main([
            "run", "fig9", "--quick", "--format", "json", "--out", out_dir,
        ])
        assert code == EXIT_OK
        with open(os.path.join(out_dir, "fig9.json")) as handle:
            data = json.load(handle)
        assert data["experiment"] == "fig9"
        assert data["records"]
        for record in data["records"]:
            assert record["completed"] > 0
            assert "residency" in record
            assert "transitions_per_second" in record

    def test_run_all_quick_batches_into_one_sweep(self, capsys, monkeypatch):
        # The union of every quick grid simulates through a *single*
        # deduplicated run_many call holding every unique point, and
        # every registered experiment emits records from that one batch.
        from repro.cli import cmd_run
        from repro.experiments.api import all_experiments, collect_grid
        from repro.sweep import SweepRunner, clear_shared_cache

        clear_shared_cache()
        calls = []
        original = SweepRunner.run_many

        def spying_run_many(self, specs):
            specs = list(specs)
            calls.append(len(specs))
            return original(self, specs)

        monkeypatch.setattr(SweepRunner, "run_many", spying_run_many)
        assert cmd_run([], run_all=True, quick=True, fmt="jsonl") == EXIT_OK
        out = capsys.readouterr().out
        records = [json.loads(line) for line in out.splitlines() if line.strip()]
        ids = {record["experiment"] for record in records}
        assert ids == set(EXPERIMENT_IDS)
        # one batched call, sized like the deduplicated union grid
        union = collect_grid([e.quick() for e in all_experiments()])
        assert calls == [len(union)]


class TestCacheCommand:
    def _populate(self, cache_dir):
        from repro.sweep import clear_shared_cache

        clear_shared_cache()
        assert main([
            "sweep", "--config", "baseline", "--kqps", "20",
            "--horizon", "0.02", "--seed", "7", "--cache-dir", cache_dir,
        ]) == EXIT_OK

    def test_stats_reports_counts(self, tmp_path, capsys):
        cache_dir = str(tmp_path)
        self._populate(cache_dir)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == EXIT_OK
        out = capsys.readouterr().out
        assert "current records: 1" in out
        assert "stale records:   0" in out
        assert "results.sqlite" in out

    def test_prune_drops_stale_salts(self, tmp_path, capsys):
        from repro.store import ResultStore

        cache_dir = str(tmp_path)
        self._populate(cache_dir)
        store = ResultStore(cache_dir)
        # Rewrite the record under a fake old-code salt.
        stale = ResultStore(cache_dir, salt="stale-salt")
        result = None
        from repro.sweep import ScenarioSpec, SweepRunner

        spec = ScenarioSpec(workload="memcached", config="baseline",
                            qps=20_000, horizon=0.02, seed=7)
        result = SweepRunner().run(spec)
        stale.put(spec.cache_key, result, spec=spec)
        assert store.total_records() == 2
        capsys.readouterr()
        assert main(["cache", "prune", "--cache-dir", cache_dir]) == EXIT_OK
        assert "pruned 1 stale record(s)" in capsys.readouterr().out
        assert store.total_records() == 1

    def test_clear_drops_everything(self, tmp_path, capsys):
        from repro.store import ResultStore

        cache_dir = str(tmp_path)
        self._populate(cache_dir)
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == EXIT_OK
        assert "cleared 1 record(s)" in capsys.readouterr().out
        assert ResultStore(cache_dir).total_records() == 0


class TestSweepCommand:
    def test_sweep_prints_table(self, capsys):
        code = main([
            "sweep", "--config", "baseline", "--kqps", "20",
            "--horizon", "0.02", "--seed", "7",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "memcached" in out
        assert "baseline" in out
        assert "20K" in out

    def test_sweep_without_rates_is_usage_error(self, capsys):
        assert main(["sweep", "--config", "baseline"]) == EXIT_USAGE
        assert "qps" in capsys.readouterr().err

    def test_sweep_unknown_workload_is_usage_error(self, capsys):
        code = main(["sweep", "--workload", "postgres", "--kqps", "10"])
        assert code == EXIT_USAGE
        assert "invalid sweep" in capsys.readouterr().err

    def test_sweep_writes_jsonl(self, tmp_path, capsys):
        out_file = str(tmp_path / "points.jsonl")
        code = main([
            "sweep", "--config", "baseline", "AW", "--kqps", "20",
            "--horizon", "0.02", "--seed", "7", "-o", out_file,
        ])
        assert code == EXIT_OK
        with open(out_file) as handle:
            records = [json.loads(line) for line in handle]
        assert [r["config"] for r in records] == ["baseline", "AW"]
        assert all(r["completed"] > 0 for r in records)

    def test_sweep_parallel_matches_serial(self, capsys):
        from repro.experiments.common import clear_cache
        from repro.sweep import configure_default_runner

        argv = [
            "sweep", "--config", "baseline", "--kqps", "10", "20",
            "--horizon", "0.02", "--seed", "7", "--no-cache",
        ]
        try:
            clear_cache()
            assert main(argv) == EXIT_OK
            serial_out = capsys.readouterr().out
            clear_cache()
            assert main(argv + ["--jobs", "2"]) == EXIT_OK
            parallel_out = capsys.readouterr().out
            assert serial_out == parallel_out
        finally:
            # `--jobs` reconfigures the process-wide runner; put the
            # serial default back so later tests are unaffected.
            configure_default_runner()


class TestSweepGridFile:
    def _grid_dicts(self):
        from repro.sweep import ScenarioGrid

        return ScenarioGrid.product(
            configs=["baseline", "AW"], qps=[20_000],
            horizons=[0.02], seeds=[7],
        ).to_dicts()

    def test_grid_jsonl_end_to_end(self, tmp_path, capsys):
        grid_file = tmp_path / "grid.jsonl"
        with open(grid_file, "w") as handle:
            for record in self._grid_dicts():
                handle.write(json.dumps(record) + "\n")
        out_file = tmp_path / "points.jsonl"
        code = main(["sweep", "--grid", str(grid_file), "-o", str(out_file)])
        assert code == EXIT_OK
        with open(out_file) as handle:
            records = [json.loads(line) for line in handle]
        assert [r["config"] for r in records] == ["baseline", "AW"]
        assert all(r["completed"] > 0 for r in records)

    def test_grid_json_array_accepted(self, tmp_path, capsys):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(json.dumps(self._grid_dicts()[:1]))
        assert main(["sweep", "--grid", str(grid_file)]) == EXIT_OK
        assert "baseline" in capsys.readouterr().out

    def test_grid_plus_rates_is_usage_error(self, tmp_path, capsys):
        grid_file = tmp_path / "grid.jsonl"
        grid_file.write_text(json.dumps(self._grid_dicts()[0]) + "\n")
        code = main(["sweep", "--grid", str(grid_file), "--kqps", "10"])
        assert code == EXIT_USAGE
        assert "not both" in capsys.readouterr().err

    def test_grid_plus_any_axis_flag_is_usage_error(self, tmp_path, capsys):
        # Axis flags would be silently overridden by the file's specs.
        grid_file = tmp_path / "grid.jsonl"
        grid_file.write_text(json.dumps(self._grid_dicts()[0]) + "\n")
        code = main(["sweep", "--grid", str(grid_file), "--governor", "oracle"])
        assert code == EXIT_USAGE
        assert "--governor" in capsys.readouterr().err

    def test_missing_grid_file_is_usage_error(self, capsys):
        assert main(["sweep", "--grid", "/nonexistent.jsonl"]) == EXIT_USAGE
        assert "grid file" in capsys.readouterr().err

    def test_malformed_grid_file_is_usage_error(self, tmp_path, capsys):
        grid_file = tmp_path / "grid.jsonl"
        grid_file.write_text("{not json\n")
        assert main(["sweep", "--grid", str(grid_file)]) == EXIT_USAGE

    def test_empty_grid_array_is_usage_error(self, tmp_path, capsys):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text("[]")
        assert main(["sweep", "--grid", str(grid_file)]) == EXIT_USAGE
        assert "no points" in capsys.readouterr().err

    def test_timeout_without_jobs_is_usage_error(self, capsys):
        # Serial execution cannot enforce a per-point budget; accepting
        # the flag silently would leave the user unprotected.
        code = main(["sweep", "--kqps", "10", "--timeout", "5"])
        assert code == EXIT_USAGE
        assert "--jobs" in capsys.readouterr().err

    def test_unknown_spec_field_is_usage_error(self, tmp_path, capsys):
        record = dict(self._grid_dicts()[0], typo=1)
        grid_file = tmp_path / "grid.jsonl"
        grid_file.write_text(json.dumps(record) + "\n")
        assert main(["sweep", "--grid", str(grid_file)]) == EXIT_USAGE


class TestSweepCaching:
    def test_second_invocation_served_from_store(self, tmp_path, capsys):
        from repro.sweep import clear_shared_cache

        argv = [
            "sweep", "--config", "baseline", "--kqps", "20",
            "--horizon", "0.02", "--seed", "7",
            "--cache-dir", str(tmp_path), "--progress",
        ]
        clear_shared_cache()  # other tests may have memoised this point
        assert main(argv) == EXIT_OK
        first = capsys.readouterr()
        assert "[1/1]" in first.err  # one point simulated

        # a fresh process is approximated by dropping the in-memory memo
        clear_shared_cache()
        assert main(argv) == EXIT_OK
        second = capsys.readouterr()
        assert "[" not in second.err  # zero points simulated: store hits
        assert second.out == first.out

    def test_no_cache_resimulates(self, tmp_path, capsys):
        from repro.sweep import clear_shared_cache

        argv = [
            "sweep", "--config", "baseline", "--kqps", "20",
            "--horizon", "0.02", "--seed", "7",
            "--cache-dir", str(tmp_path), "--progress", "--no-cache",
        ]
        clear_shared_cache()  # other tests may have memoised this point
        assert main(argv) == EXIT_OK
        assert "[1/1]" in capsys.readouterr().err
        clear_shared_cache()
        assert main(argv) == EXIT_OK
        assert "[1/1]" in capsys.readouterr().err  # simulated again

    def test_cli_flags_do_not_leak_into_default_runner(self, tmp_path):
        from repro.sweep import default_runner

        before = default_runner()
        assert main([
            "sweep", "--config", "baseline", "--kqps", "20",
            "--horizon", "0.02", "--seed", "7",
            "--cache-dir", str(tmp_path), "--on-error", "skip",
        ]) == EXIT_OK
        after = default_runner()
        assert after is before
        assert after.store is None


class TestSweepFailureHandling:
    # uses the shared `failing_workload` fixture from tests/conftest.py

    def _mixed_grid_file(self, tmp_path, failing_workload):
        from repro.sweep import ScenarioGrid, ScenarioSpec

        grid = ScenarioGrid([
            ScenarioSpec(workload="memcached", config="baseline", qps=20_000,
                         horizon=0.02, seed=7),
            ScenarioSpec(workload=failing_workload, config="baseline", qps=20_000,
                         horizon=0.02, seed=7),
            ScenarioSpec(workload="memcached", config="AW", qps=20_000,
                         horizon=0.02, seed=7),
        ])
        grid_file = tmp_path / "grid.jsonl"
        with open(grid_file, "w") as handle:
            for record in grid.to_dicts():
                handle.write(json.dumps(record) + "\n")
        return grid_file

    def test_skip_policy_completes_and_reports_failure(
        self, tmp_path, capsys, failing_workload
    ):
        grid_file = self._mixed_grid_file(tmp_path, failing_workload)
        out_file = tmp_path / "points.jsonl"
        code = main([
            "sweep", "--grid", str(grid_file), "--on-error", "skip",
            "--no-cache", "-o", str(out_file),
        ])
        assert code == EXIT_ERROR  # completed, but with a failure
        with open(out_file) as handle:
            records = [json.loads(line) for line in handle]
        # skip: only the surviving points appear in the output...
        assert [r["config"] for r in records] == ["baseline", "AW"]
        assert all(r["completed"] > 0 for r in records)
        # ...but the failure is recorded on stderr, never silent
        err = capsys.readouterr().err
        assert "kaboom" in err
        assert "1 of 3" in err

    def test_record_policy_keeps_inline_error_records(
        self, tmp_path, capsys, failing_workload
    ):
        grid_file = self._mixed_grid_file(tmp_path, failing_workload)
        out_file = tmp_path / "points.jsonl"
        code = main([
            "sweep", "--grid", str(grid_file), "--on-error", "record",
            "--no-cache", "-o", str(out_file),
        ])
        assert code == EXIT_ERROR
        with open(out_file) as handle:
            records = [json.loads(line) for line in handle]
        assert len(records) == 3
        assert records[0]["completed"] > 0
        assert "kaboom" in records[1]["error"]
        assert records[2]["completed"] > 0

    def test_record_policy_includes_error_text(
        self, tmp_path, capsys, failing_workload
    ):
        grid_file = self._mixed_grid_file(tmp_path, failing_workload)
        code = main([
            "sweep", "--grid", str(grid_file), "--on-error", "record",
            "--no-cache",
        ])
        assert code == EXIT_ERROR
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "kaboom" in out

    def test_raise_policy_aborts(self, tmp_path, capsys, failing_workload):
        grid_file = self._mixed_grid_file(tmp_path, failing_workload)
        with pytest.raises(RuntimeError, match="kaboom"):
            main(["sweep", "--grid", str(grid_file), "--no-cache"])


class TestSweepEmit:
    def _sweep(self, tmp_path, *extra):
        from repro.sweep import clear_shared_cache

        clear_shared_cache()
        out_file = tmp_path / "points.jsonl"
        argv = [
            "sweep", "--config", "baseline", "--kqps", "20",
            "--horizon", "0.02", "--seed", "7", "--no-cache",
            "-o", str(out_file),
        ] + list(extra)
        assert main(argv) == EXIT_OK
        with open(out_file) as handle:
            return [json.loads(line) for line in handle]

    def test_default_emit_is_headline_only(self, tmp_path):
        (record,) = self._sweep(tmp_path)
        assert record["completed"] > 0
        assert "residency" not in record
        assert "transitions_per_second" not in record

    def test_emit_residency_adds_detail(self, tmp_path):
        (record,) = self._sweep(tmp_path, "--emit", "residency")
        assert record["completed"] > 0
        assert sum(record["residency"].values()) == pytest.approx(1.0, abs=1e-6)
        assert record["transitions_per_second"]
        # spec fields survive alongside the detail
        assert record["workload"] == "memcached"
        assert record["governor"] == "menu"


class TestDistributedCLI:
    """`repro sweep --distributed`, `repro worker`, fleet reports."""

    def test_parser_accepts_distributed_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--kqps", "20", "--distributed", "/tmp/q"]
        )
        assert args.distributed == "/tmp/q"
        args = build_parser().parse_args(
            ["worker", "--queue", "/tmp/q", "--lease", "10", "--retries", "2"]
        )
        assert args.command == "worker"
        assert args.queue == "/tmp/q"
        assert args.lease == 10.0
        assert args.retries == 2

    def test_distributed_rejects_no_cache(self, tmp_path, capsys):
        code = main([
            "sweep", "--kqps", "20", "--distributed", str(tmp_path / "q"),
            "--no-cache",
        ])
        assert code == EXIT_USAGE
        assert "store" in capsys.readouterr().err

    def test_distributed_rejects_timeout(self, tmp_path, capsys):
        code = main([
            "sweep", "--kqps", "20", "--distributed", str(tmp_path / "q"),
            "--timeout", "5", "--cache-dir", str(tmp_path / "store"),
        ])
        assert code == EXIT_USAGE
        assert "lease" in capsys.readouterr().err

    def test_worker_rejects_bad_lease(self, tmp_path, capsys):
        code = main([
            "worker", "--queue", str(tmp_path / "q"), "--lease", "0",
        ])
        assert code == EXIT_USAGE
        assert "--lease" in capsys.readouterr().err

    def test_worker_drains_empty_queue_and_exits(self, tmp_path, capsys):
        code = main([
            "worker", "--queue", str(tmp_path / "q"),
            "--store", str(tmp_path / "store"), "--verbose",
        ])
        assert code == EXIT_OK
        assert "exiting" in capsys.readouterr().err

    def test_distributed_sweep_end_to_end_then_resumes(self, tmp_path, capsys):
        argv = [
            "sweep", "--config", "baseline", "--kqps", "20",
            "--horizon", "0.01", "--seed", "1", "2",
            "--distributed", str(tmp_path / "q"), "--jobs", "2",
            "--cache-dir", str(tmp_path / "store"),
        ]
        assert main(argv) == EXIT_OK
        first = capsys.readouterr().out
        assert "baseline" in first and "20K" in first
        # Same queue dir again: resumes purely from store hits.
        assert main(argv) == EXIT_OK
        assert capsys.readouterr().out == first

    def test_manifest_only_fleet_report(self, tmp_path, capsys):
        from repro.obs.manifest import RunManifest

        manifests = tmp_path / "manifests"
        manifests.mkdir()
        with RunManifest(str(manifests / "w1.jsonl"), worker="w1") as m:
            m.emit("worker_start", pid=1)
            m.emit("worker_exit", claims=0, settled=0)
        out = tmp_path / "fleet.html"
        code = main([
            "report", "--manifest", str(manifests), "-o", str(out),
            "--cache-dir", str(tmp_path / "store"),
        ])
        assert code == EXIT_OK
        page = out.read_text()
        assert "Distributed fleet" in page
        assert "w1" in page
