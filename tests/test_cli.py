"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import EXPERIMENT_IDS, build_parser, cmd_run, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_with_ids(self):
        args = build_parser().parse_args(["run", "table1", "table2"])
        assert args.ids == ["table1", "table2"]
        assert not args.all

    def test_run_all_flag(self):
        args = build_parser().parse_args(["run", "--all"])
        assert args.all

    def test_output_dir_flag(self):
        args = build_parser().parse_args(["run", "table1", "-o", "out"])
        assert args.output_dir == "out"


class TestCommands:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENT_IDS:
            assert experiment_id in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "table1", "motivation"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Eq. 1" in out

    def test_run_nothing_errors(self, capsys):
        assert main(["run"]) == 2

    def test_unknown_id_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_output_dir_writes_files(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        assert cmd_run(["table2"], run_all=False, output_dir=out_dir) == 0
        path = os.path.join(out_dir, "table2.txt")
        assert os.path.exists(path)
        with open(path) as handle:
            assert "Table 2" in handle.read()

    def test_experiment_ids_all_importable(self):
        import importlib

        for experiment_id in EXPERIMENT_IDS:
            module = importlib.import_module(f"repro.experiments.{experiment_id}")
            assert hasattr(module, "main")
            assert hasattr(module, "run")
