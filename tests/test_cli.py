"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import (
    EXIT_OK,
    EXIT_USAGE,
    EXPERIMENT_IDS,
    build_parser,
    cmd_run,
    main,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_with_ids(self):
        args = build_parser().parse_args(["run", "table1", "table2"])
        assert args.ids == ["table1", "table2"]
        assert not args.all

    def test_run_all_flag(self):
        args = build_parser().parse_args(["run", "--all"])
        assert args.all

    def test_output_dir_flag(self):
        args = build_parser().parse_args(["run", "table1", "-o", "out"])
        assert args.output_dir == "out"

    def test_jobs_flag(self):
        args = build_parser().parse_args(["run", "--all", "--jobs", "4"])
        assert args.jobs == 4

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "--kqps", "10", "100"])
        assert args.command == "sweep"
        assert args.workload == ["memcached"]
        assert args.config == ["baseline"]
        assert args.kqps == [10.0, 100.0]

    def test_sweep_turbo_flags_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--kqps", "10", "--turbo", "--no-turbo"])


class TestCommands:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENT_IDS:
            assert experiment_id in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "table1", "motivation"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Eq. 1" in out

    def test_run_nothing_errors(self, capsys):
        assert main(["run"]) == EXIT_USAGE

    def test_unknown_id_is_usage_error(self, capsys):
        assert main(["run", "fig99"]) == EXIT_USAGE
        assert "fig99" in capsys.readouterr().err

    def test_output_dir_writes_files(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        assert cmd_run(["table2"], run_all=False, output_dir=out_dir) == 0
        path = os.path.join(out_dir, "table2.txt")
        assert os.path.exists(path)
        with open(path) as handle:
            assert "Table 2" in handle.read()

    def test_experiment_ids_all_importable(self):
        import importlib

        for experiment_id in EXPERIMENT_IDS:
            module = importlib.import_module(f"repro.experiments.{experiment_id}")
            assert hasattr(module, "main")
            assert hasattr(module, "run")


class TestSweepCommand:
    def test_sweep_prints_table(self, capsys):
        code = main([
            "sweep", "--config", "baseline", "--kqps", "20",
            "--horizon", "0.02", "--seed", "7",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "memcached" in out
        assert "baseline" in out
        assert "20K" in out

    def test_sweep_without_rates_is_usage_error(self, capsys):
        assert main(["sweep", "--config", "baseline"]) == EXIT_USAGE
        assert "qps" in capsys.readouterr().err

    def test_sweep_unknown_workload_is_usage_error(self, capsys):
        code = main(["sweep", "--workload", "postgres", "--kqps", "10"])
        assert code == EXIT_USAGE
        assert "invalid sweep" in capsys.readouterr().err

    def test_sweep_writes_jsonl(self, tmp_path, capsys):
        out_file = str(tmp_path / "points.jsonl")
        code = main([
            "sweep", "--config", "baseline", "AW", "--kqps", "20",
            "--horizon", "0.02", "--seed", "7", "-o", out_file,
        ])
        assert code == EXIT_OK
        with open(out_file) as handle:
            records = [json.loads(line) for line in handle]
        assert [r["config"] for r in records] == ["baseline", "AW"]
        assert all(r["completed"] > 0 for r in records)

    def test_sweep_parallel_matches_serial(self, capsys):
        from repro.experiments.common import clear_cache
        from repro.sweep import configure_default_runner

        argv = [
            "sweep", "--config", "baseline", "--kqps", "10", "20",
            "--horizon", "0.02", "--seed", "7",
        ]
        try:
            clear_cache()
            assert main(argv) == EXIT_OK
            serial_out = capsys.readouterr().out
            clear_cache()
            assert main(argv + ["--jobs", "2"]) == EXIT_OK
            parallel_out = capsys.readouterr().out
            assert serial_out == parallel_out
        finally:
            # `--jobs` reconfigures the process-wide runner; put the
            # serial default back so later tests are unaffected.
            configure_default_runner()
