"""Edge-case tests for the server node's state machine.

Deterministic single-core scenarios that pin down the tricky paths:
arrivals landing during C-state entry, wake racing service completion,
and C6 transitions straddling the horizon.
"""

import pytest

from repro.server import ServerNode, named_configuration
from repro.simkit.distributions import Degenerate
from repro.units import MS, US
from repro.workloads.base import ServiceTimeModel, Workload
from repro.workloads.loadgen import LoadGenerator


class ScriptedArrivals(LoadGenerator):
    """Load generator with an explicit arrival-time list."""

    def __init__(self, times):
        self._times = sorted(times)

    @property
    def rate_qps(self):
        return len(self._times)

    def arrivals(self, horizon):
        for t in self._times:
            if t < horizon:
                yield t


def _node(arrival_times, config="NT_Baseline", service_us=10.0, horizon=0.02,
          governor_factory=None):
    workload = Workload(
        "scripted",
        ServiceTimeModel(Degenerate(0.0), Degenerate(service_us * US)),
        snoop_rate_hz=0.0,
    )
    node = ServerNode(
        workload=workload,
        configuration=named_configuration(config),
        qps=1.0,  # placeholder; arrivals are scripted below
        cores=1,
        horizon=horizon,
        seed=5,
        governor_factory=governor_factory,
    )
    node._loadgen = ScriptedArrivals(arrival_times)
    return node


class TestArrivalDuringEntry:
    def test_request_waits_for_entry_then_pays_exit(self):
        # First request finishes at 10 us + C1 entry (1 us) in progress;
        # second arrives 10.5 us (mid-entry). It must wait for entry to
        # complete (11 us), then pay C1 exit (1 us), then serve 10 us.
        from repro.governor.idle import FixedGovernor

        node = _node([0.0, 10.5 * US], config="NT_No_C6_No_C1E",
                     governor_factory=lambda: FixedGovernor("C1"))
        result = node.run()
        assert result.completed == 2
        latencies = sorted(node.latency._samples)
        assert latencies[0] == pytest.approx(10 * US, rel=0.01)
        # second: waits 0.5 us (entry) + 1 us exit + 10 us service
        assert latencies[1] == pytest.approx(11.5 * US, rel=0.02)

    def test_back_to_back_requests_no_idle_churn(self):
        # Arrivals every 10 us with 10 us service: the core never idles
        # during the 200 us the requests span.
        times = [i * 10 * US for i in range(20)]
        node = _node(times, horizon=200 * US)
        result = node.run()
        assert result.completed == 20
        assert result.residency_of("C0") > 0.95


class TestDeepWakePenalty:
    def test_c6_wake_costs_its_exit_latency(self):
        from repro.governor.idle import FixedGovernor

        # One request at t=0, second after a 5 ms gap: core sits in C6
        # (fixed governor), wake pays C6's 46 us exit.
        node = _node([0.0, 5 * MS], config="NT_Baseline", horizon=0.01,
                     governor_factory=lambda: FixedGovernor("C6"))
        result = node.run()
        assert result.completed == 2
        latencies = sorted(node.latency._samples)
        assert latencies[1] == pytest.approx((46 + 10) * US, rel=0.02)

    def test_c1_wake_is_cheap(self):
        from repro.governor.idle import FixedGovernor

        node = _node([0.0, 5 * MS], config="NT_Baseline", horizon=0.01,
                     governor_factory=lambda: FixedGovernor("C1"))
        result = node.run()
        latencies = sorted(node.latency._samples)
        assert latencies[1] == pytest.approx(11 * US, rel=0.02)

    def test_c6a_wake_nearly_free_vs_c1(self):
        from repro.governor.idle import FixedGovernor

        legacy = _node([0.0, 5 * MS], config="NT_Baseline", horizon=0.01,
                       governor_factory=lambda: FixedGovernor("C1"))
        aw = _node([0.0, 5 * MS], config="NT_AW", horizon=0.01,
                   governor_factory=lambda: FixedGovernor("C6A"))
        l1 = sorted(legacy.run() and legacy.latency._samples)[1]
        l2 = sorted(aw.run() and aw.latency._samples)[1]
        # C6A adds only ~80 ns of hardware exit over C1.
        assert l2 - l1 == pytest.approx(80e-9, abs=30e-9)


class TestHorizonStraddling:
    def test_entry_in_flight_at_horizon_end(self):
        # Single request early; the core goes idle and the horizon ends
        # while resident. Residency must still sum to 1.
        node = _node([0.0], horizon=0.001)
        result = node.run()
        assert sum(result.residency.values()) == pytest.approx(1.0, abs=1e-9)

    def test_arrival_after_horizon_ignored(self):
        node = _node([0.0, 0.05])  # second arrival beyond 0.02 horizon
        result = node.run()
        assert result.completed == 1


class TestIdlePowerAccounting:
    def test_long_idle_power_approaches_state_power(self):
        from repro.governor.idle import FixedGovernor

        # One request then 20 ms of C1E idling: average power ~ C1E's.
        node = _node([0.0], config="NT_No_C6", horizon=0.02,
                     governor_factory=lambda: FixedGovernor("C1E"))
        result = node.run()
        assert result.avg_core_power == pytest.approx(0.88, rel=0.05)

    def test_aw_long_idle_approaches_c6ae_power(self):
        from repro.governor.idle import FixedGovernor

        node = _node([0.0], config="NT_AW", horizon=0.02,
                     governor_factory=lambda: FixedGovernor("C6AE"))
        result = node.run()
        assert result.avg_core_power == pytest.approx(0.238, rel=0.10)
