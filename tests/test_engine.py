"""Tests for the discrete-event simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.simkit import Simulator


class TestScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_single_event_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0]

    def test_relative_schedule(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.5]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(3.0, lambda: order.append(3))
        sim.schedule_at(1.0, lambda: order.append(1))
        sim.schedule_at(2.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2, 3]

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule_at(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_past_schedule_rejected(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule_at(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_at(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()  # must not raise

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("a"))
        victim = sim.schedule_at(2.0, lambda: fired.append("b"))
        sim.schedule_at(3.0, lambda: fired.append("c"))
        victim.cancel()
        sim.run()
        assert fired == ["a", "c"]


class TestRunControl:
    def test_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_until_leaves_later_events_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.pending_events == 1

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule_at(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert len(fired) == 3

    def test_step(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule_at(float(i + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_drain_discards(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.drain()
        sim.run()
        assert fired == []

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule_at(1.0, nested)
        sim.run()
        assert len(errors) == 1


class TestDeterminism:
    def test_identical_schedules_produce_identical_traces(self):
        def build():
            sim = Simulator()
            trace = []
            for i in range(50):
                sim.schedule_at(((i * 7919) % 100) / 10.0, lambda i=i: trace.append(i))
            sim.run()
            return trace

        assert build() == build()
