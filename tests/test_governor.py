"""Tests for idle governors and the P-state table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cstates import FrequencyPoint, agilewatts_catalog, skylake_baseline_catalog
from repro.errors import ConfigurationError
from repro.governor import FixedGovernor, MenuGovernor, OracleGovernor, PState, PStateTable
from repro.units import US


class TestMenuGovernor:
    def test_initial_prediction_used(self):
        gov = MenuGovernor(initial_prediction=1e-3, caution=1.0)
        assert gov.predicted_idle == pytest.approx(1e-3)

    def test_ewma_tracks_observations(self):
        gov = MenuGovernor(alpha=0.5, caution=1.0, initial_prediction=0.0)
        gov.observe_idle(100 * US)
        assert gov.predicted_idle == pytest.approx(50 * US)
        gov.observe_idle(100 * US)
        assert gov.predicted_idle == pytest.approx(75 * US)

    def test_caution_discounts_prediction(self):
        gov = MenuGovernor(alpha=1.0, caution=0.5, initial_prediction=0.0)
        gov.observe_idle(100 * US)
        assert gov.predicted_idle == pytest.approx(50 * US)

    def test_chooses_deep_state_for_long_idles(self):
        gov = MenuGovernor(alpha=1.0, caution=1.0)
        gov.observe_idle(0.01)
        assert gov.choose(skylake_baseline_catalog()).name == "C6"

    def test_chooses_shallow_state_for_short_idles(self):
        gov = MenuGovernor(alpha=1.0, caution=1.0)
        gov.observe_idle(3 * US)
        assert gov.choose(skylake_baseline_catalog()).name == "C1"

    def test_latency_limit_respected(self):
        gov = MenuGovernor(alpha=1.0, caution=1.0, latency_limit=10 * US)
        gov.observe_idle(1.0)
        assert gov.choose(skylake_baseline_catalog()).name != "C6"

    def test_adapts_downward(self):
        gov = MenuGovernor(alpha=0.5, caution=1.0, initial_prediction=1.0)
        for _ in range(30):
            gov.observe_idle(3 * US)
        assert gov.choose(skylake_baseline_catalog()).name == "C1"

    def test_observation_counter(self):
        gov = MenuGovernor()
        gov.observe_idle(1e-3)
        gov.observe_idle(1e-3)
        assert gov.observations == 2

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            MenuGovernor().observe_idle(-1.0)

    def test_bad_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            MenuGovernor(alpha=0.0)
        with pytest.raises(ConfigurationError):
            MenuGovernor(alpha=1.5)

    def test_works_with_aw_catalog(self):
        gov = MenuGovernor(alpha=1.0, caution=1.0)
        gov.observe_idle(30 * US)
        assert gov.choose(agilewatts_catalog()).name == "C6AE"

    @given(durations=st.lists(st.floats(min_value=0, max_value=1.0), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_prediction_bounded_by_history(self, durations):
        gov = MenuGovernor(alpha=0.3, caution=1.0, initial_prediction=0.0)
        for d in durations:
            gov.observe_idle(d)
        assert 0.0 <= gov.predicted_idle <= max(durations) + 1e-12


class TestFixedGovernor:
    def test_always_picks_named_state(self):
        gov = FixedGovernor("C1E")
        assert gov.choose(skylake_baseline_catalog()).name == "C1E"

    def test_falls_back_when_disabled(self):
        gov = FixedGovernor("C6")
        catalog = skylake_baseline_catalog().disable("C6")
        assert gov.choose(catalog).name == "C1"

    def test_unknown_state_falls_back_to_shallowest(self):
        # "C1" against an AW catalog (which has no C1) -> C6A; a fully
        # unknown name behaves the same.
        assert FixedGovernor("C1").choose(agilewatts_catalog()).name == "C6A"
        assert FixedGovernor("C9").choose(skylake_baseline_catalog()).name == "C1"


class TestOracleGovernor:
    def test_uses_hint(self):
        gov = OracleGovernor()
        catalog = skylake_baseline_catalog()
        assert gov.choose(catalog, hint=1.0).name == "C6"
        assert gov.choose(catalog, hint=3 * US).name == "C1"

    def test_requires_hint(self):
        with pytest.raises(ConfigurationError):
            OracleGovernor().choose(skylake_baseline_catalog())

    def test_respects_latency_limit(self):
        gov = OracleGovernor(latency_limit=2 * US)
        assert gov.choose(skylake_baseline_catalog(), hint=1.0).name == "C1"


class TestPStateTable:
    def test_default_points(self):
        table = PStateTable()
        assert table.get("P1").frequency is FrequencyPoint.P1
        assert table.get("Pn").frequency is FrequencyPoint.PN
        assert table.get("Turbo").frequency is FrequencyPoint.TURBO

    def test_turbo_disable(self):
        table = PStateTable(turbo_enabled=False)
        with pytest.raises(ConfigurationError):
            table.get("Turbo")
        assert len(table.states) == 2

    def test_operating_point_pinned_at_p1(self):
        assert PStateTable().operating_point().name == "P1"

    def test_operating_point_requires_control_off(self):
        with pytest.raises(ConfigurationError):
            PStateTable(software_control=True).operating_point()

    def test_dvfs_latency_microseconds(self):
        latency = PStateTable().dvfs_latency("P1", "Pn")
        assert 1 * US <= latency <= 100 * US

    def test_powers_ordered_by_frequency(self):
        table = PStateTable()
        assert table.get("Pn").power_watts < table.get("P1").power_watts
        assert table.get("P1").power_watts < table.get("Turbo").power_watts

    def test_unknown_pstate_rejected(self):
        with pytest.raises(ConfigurationError):
            PStateTable().get("P7")

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            PState("X", FrequencyPoint.P1, transition_latency=-1.0)
