"""Tests for the AW ports to other core designs (Sec 5.5)."""

import pytest

from repro.core.ports import (
    client_core_design,
    compare_ports,
    skylake_server_design,
    zen3_like_design,
)


class TestSkylakePort:
    def test_is_the_default_design(self):
        design = skylake_server_design()
        assert design.c6a_power == pytest.approx(0.3, rel=0.05)
        assert all(design.verify().values())


class TestZen3Port:
    def test_nanosecond_class_transition(self):
        # The technique ports: transitions stay in the nanosecond class.
        design = zen3_like_design()
        assert design.hardware_round_trip < 150e-9

    def test_no_fivr_static_loss(self):
        design = zen3_like_design()
        static = [
            e for e in design.breakdown.entries if "static" in e.subcomponent
        ][0]
        assert static.c6a_power == (0.0, 0.0)

    def test_cheaper_idle_than_skylake(self):
        # Dropping the 100 mW per-core FIVR static loss dominates.
        assert zen3_like_design().c6a_power < skylake_server_design().c6a_power

    def test_smaller_cache_cheaper_sleep(self):
        zen = zen3_like_design()
        sky = skylake_server_design()
        assert (
            zen.ccsm.data_array_sleep_power("P1")
            < sky.ccsm.data_array_sleep_power("P1")
        )

    def test_catalog_usable_in_simulator(self):
        from repro.server import simulate
        from repro.server.config import ServerConfiguration
        from repro.workloads import memcached_workload

        design = zen3_like_design()
        config = ServerConfiguration(
            name="zen3_aw",
            catalog=design.catalog(),
            turbo_enabled=False,
            frequency_derate=design.frequency_penalty,
            is_agilewatts=True,
        )
        result = simulate(memcached_workload(), config, qps=50_000,
                          horizon=0.05, seed=9)
        assert result.completed > 0
        assert result.residency_of("C6A") + result.residency_of("C6AE") > 0


class TestClientPort:
    def test_cheaper_than_skylake_port(self):
        # Lower leakage + smaller caches; it still carries the per-core
        # FIVR static loss, so the zen3 port (board VR) remains cheapest.
        client = client_core_design().c6a_power
        assert client < skylake_server_design().c6a_power

    def test_nanosecond_class(self):
        assert client_core_design().hardware_round_trip < 150e-9


class TestComparePorts:
    def test_all_three_reported(self):
        table = compare_ports()
        assert set(table) == {"skylake-server", "zen3-like", "client"}

    def test_all_nanosecond_class(self):
        # The generality claim: every port keeps ns-class transitions.
        for name, figures in compare_ports().items():
            assert figures["nanosecond_class"], name

    def test_c6ae_below_c6a_everywhere(self):
        for figures in compare_ports().values():
            assert figures["c6ae_power_watts"] < figures["c6a_power_watts"]
