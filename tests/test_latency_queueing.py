"""Tests for the M/G/1-with-setup analytical latency model."""

import pytest

from repro.analytical.latency_model import (
    MG1SetupModel,
    SetupDistribution,
    aw_latency_advantage,
)
from repro.core.cstates import agilewatts_catalog, skylake_baseline_catalog
from repro.errors import ConfigurationError
from repro.units import US


class TestSetupDistribution:
    def test_single_state_mixture(self):
        setup = SetupDistribution.from_wake_shares({"C1": 1.0})
        c1_exit = skylake_baseline_catalog().get("C1").exit_latency
        assert setup.mean == pytest.approx(c1_exit)
        assert setup.second_moment == pytest.approx(c1_exit ** 2)

    def test_mixture_mean(self):
        catalog = skylake_baseline_catalog()
        setup = SetupDistribution.from_wake_shares({"C1": 0.5, "C6": 0.5})
        expected = 0.5 * catalog.get("C1").exit_latency + 0.5 * catalog.get("C6").exit_latency
        assert setup.mean == pytest.approx(expected)

    def test_shares_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            SetupDistribution.from_wake_shares({"C1": 0.5})

    def test_negative_share_rejected(self):
        with pytest.raises(ConfigurationError):
            SetupDistribution.from_wake_shares({"C1": 1.5, "C6": -0.5})


class TestMG1Model:
    def test_pk_formula_exponential_service(self):
        # M/M/1 check: E[W] = rho/(1-rho) * E[S]; E[S^2] = 2 E[S]^2.
        model = MG1SetupModel(
            arrival_rate=50_000.0,
            service_mean=10 * US,
            service_second_moment=2 * (10 * US) ** 2,
        )
        rho = model.utilization
        assert model.queueing_wait == pytest.approx(rho / (1 - rho) * 10 * US)

    def test_deterministic_service_halves_wait(self):
        # M/D/1 waits are half of M/M/1 waits.
        mm1 = MG1SetupModel(50_000.0, 10 * US, 2 * (10 * US) ** 2)
        md1 = MG1SetupModel(50_000.0, 10 * US, (10 * US) ** 2)
        assert md1.queueing_wait == pytest.approx(mm1.queueing_wait / 2)

    def test_setup_adds_wait(self):
        base = MG1SetupModel(10_000.0, 10 * US, (10 * US) ** 2)
        with_setup = MG1SetupModel(
            10_000.0, 10 * US, (10 * US) ** 2,
            setup=SetupDistribution.from_wake_shares({"C6": 1.0}),
        )
        assert with_setup.mean_response_time > base.mean_response_time

    def test_deeper_setup_costs_more(self):
        kwargs = dict(arrival_rate=10_000.0, service_mean=10 * US,
                      service_second_moment=(10 * US) ** 2)
        c1 = MG1SetupModel(**kwargs, setup=SetupDistribution.from_wake_shares({"C1": 1.0}))
        c6 = MG1SetupModel(**kwargs, setup=SetupDistribution.from_wake_shares({"C6": 1.0}))
        assert c6.mean_response_time > c1.mean_response_time

    def test_unstable_queue_rejected(self):
        with pytest.raises(ConfigurationError):
            MG1SetupModel(200_000.0, 10 * US, (10 * US) ** 2)

    def test_response_is_wait_plus_service(self):
        model = MG1SetupModel(10_000.0, 10 * US, (10 * US) ** 2)
        assert model.mean_response_time == pytest.approx(
            model.mean_wait + 10 * US
        )


class TestFromWorkload:
    def test_builds_from_memcached(self):
        from repro.workloads import memcached_workload

        workload = memcached_workload()
        model = MG1SetupModel.from_workload(
            workload.service, qps=100_000, cores=10,
            wake_shares={"C1E": 1.0},
        )
        assert 0.05 < model.utilization < 0.2
        assert model.mean_response_time > workload.service.mean

    def test_invalid_cores_rejected(self):
        from repro.workloads import memcached_workload

        with pytest.raises(ConfigurationError):
            MG1SetupModel.from_workload(
                memcached_workload().service, qps=1000, cores=0
            )


class TestCrossValidationAgainstSimulator:
    def test_predicts_simulated_latency_at_moderate_load(self):
        # Fixed C1E governor, no snoops: the closed form should land
        # within ~15% of the simulator's measured mean latency.
        from repro.governor.idle import FixedGovernor
        from repro.server import ServerNode, named_configuration
        from repro.workloads import memcached_workload

        workload = memcached_workload()
        qps, cores = 200_000, 10
        node = ServerNode(
            workload=workload,
            configuration=named_configuration("NT_No_C6"),
            qps=qps, cores=cores, horizon=0.15, seed=21,
            snoops_enabled=False,
            governor_factory=lambda: FixedGovernor("C1E"),
        )
        simulated = node.run().avg_latency

        # The service model's scv: lognormal parts with sigma 0.55 give
        # per-request scv ~ exp(sigma^2)-1 blended over two components.
        model = MG1SetupModel.from_workload(
            workload.service, qps=qps, cores=cores,
            wake_shares={"C1E": 1.0}, service_scv=0.25,
        )
        assert model.mean_response_time == pytest.approx(simulated, rel=0.15)


class TestAWAdvantage:
    def test_aw_faster_when_legacy_wakes_from_c6(self):
        from repro.workloads import memcached_workload

        advantage = aw_latency_advantage(
            qps=50_000, cores=10,
            service=memcached_workload().service,
            legacy_shares={"C1E": 0.6, "C6": 0.4},
        )
        assert advantage > 10 * US  # C6's 46 us exits dominate

    def test_aw_nearly_neutral_vs_c1_only(self):
        from repro.workloads import memcached_workload

        advantage = aw_latency_advantage(
            qps=50_000, cores=10,
            service=memcached_workload().service,
            legacy_shares={"C1": 1.0},
        )
        # C6A costs only ~80 ns more than C1 per wake.
        assert abs(advantage) < 0.2 * US
