"""Sweep run manifests: the append-only JSONL lifecycle stream."""

import io
import json

import pytest

from repro.obs.manifest import RunManifest, spec_key
from repro.obs.report import summarize_manifest
from repro.sweep import FailurePolicy, SweepRunner
from repro.sweep.spec import ScenarioSpec


def _spec(**overrides):
    base = dict(
        workload="memcached", config="baseline", qps=20_000,
        horizon=0.02, seed=7,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestRunManifest:
    def test_emits_flushed_jsonl_lines(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with RunManifest(str(path), worker="w1") as manifest:
            manifest.emit("claimed", point=0, attempt=1)
            manifest.emit("finished", point=0, wall_s=0.5)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [row["event"] for row in rows] == ["claimed", "finished"]
        for row in rows:
            assert row["worker"] == "w1"
            assert row["t"] >= 0
            assert row["wall"] > 0
        assert rows[0]["t"] <= rows[1]["t"]

    def test_append_mode_preserves_previous_runs(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        for attempt in (1, 2):
            with RunManifest(str(path)) as manifest:
                manifest.emit("sweep", attempt=attempt)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [row["attempt"] for row in rows] == [1, 2]

    def test_reserved_keys_cannot_be_overridden(self):
        stream = io.StringIO()
        manifest = RunManifest(stream)
        manifest.emit("claimed", **{"worker": "spoofed", "t": -1})
        row = _lines(stream)[0]
        assert row["event"] == "claimed"
        assert row["worker"] == "main"
        assert row["t"] >= 0

    def test_wrapped_stream_not_closed(self):
        stream = io.StringIO()
        with RunManifest(stream) as manifest:
            manifest.emit("sweep")
        assert not stream.closed
        manifest.emit("late")  # closed manifest: silently dropped
        assert len(_lines(stream)) == 1

    def test_spec_key_is_the_cache_key(self):
        spec = _spec()
        assert spec_key(spec) == repr(tuple(spec.cache_key))


class TestRunnerIntegration:
    def _run(self, specs, stream=None, **runner_kwargs):
        stream = stream if stream is not None else io.StringIO()
        manifest = RunManifest(stream)
        runner = SweepRunner(manifest=manifest, cache={}, **runner_kwargs)
        results = runner.run_many(specs)
        return results, _lines(stream)

    def test_lifecycle_events_for_a_sweep(self):
        specs = [_spec(), _spec(qps=30_000), _spec()]  # one duplicate
        results, rows = self._run(specs)
        assert all(r is not None for r in results)
        events = [row["event"] for row in rows]
        assert events[0] == "sweep"
        assert events.count("claimed") == 2  # unique points only
        assert events.count("finished") == 2
        summary = rows[0]
        assert summary["points"] == 3
        assert summary["unique"] == 2  # in-sweep duplicates dedupe silently

    def test_finished_carries_wall_time_and_throughput(self):
        _, rows = self._run([_spec()])
        finished = [row for row in rows if row["event"] == "finished"][0]
        assert finished["wall_s"] > 0
        assert finished["events_per_s"] > 0
        assert finished["key"] == spec_key(_spec())
        assert finished["attempt"] == 1

    def test_memo_hit_on_repeat_run_many(self):
        stream = io.StringIO()
        manifest = RunManifest(stream)
        runner = SweepRunner(manifest=manifest, cache={})
        runner.run_many([_spec()])
        runner.run_many([_spec()])
        events = [row["event"] for row in _lines(stream)]
        assert events.count("finished") == 1
        assert events.count("memo_hit") == 1

    def test_retry_and_failed_events(self, failing_workload):
        specs = [_spec(workload=failing_workload)]
        _, rows = self._run(
            specs, policy=FailurePolicy(mode="skip", retries=1)
        )
        events = [row["event"] for row in rows]
        assert events.count("retry") == 1
        assert events.count("failed") == 1
        failed = [row for row in rows if row["event"] == "failed"][0]
        assert "kaboom" in failed["error"]

    def test_custom_executor_without_manifest_param_still_works(self):
        class BareExecutor:
            def map_specs(self, specs, on_result, on_failure, log=None):
                for i, spec in enumerate(specs):
                    on_result(i, spec, spec.execute())

        stream = io.StringIO()
        manifest = RunManifest(stream)
        runner = SweepRunner(executor=BareExecutor(), manifest=manifest, cache={})
        results = runner.run_many([_spec()])
        assert results[0] is not None
        events = [row["event"] for row in _lines(stream)]
        # the sweep summary still lands; per-point events need executor support
        assert "sweep" in events


class TestSummarize:
    def test_summary_counts_and_rates(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        stream = io.StringIO()
        manifest = RunManifest(stream)
        runner = SweepRunner(manifest=manifest, cache={})
        runner.run_many([_spec(), _spec(qps=40_000)])
        runner.run_many([_spec()])  # memo hit on the repeat call
        path.write_text(stream.getvalue() + "{truncated\n")
        summary = summarize_manifest(str(path))
        assert summary["counts"]["finished"] == 2
        assert summary["counts"]["memo_hit"] == 1
        assert summary["workers"] == ["main"]
        assert summary["finished_wall_s"] > 0
        assert summary["mean_events_per_s"] > 0
        assert summary["malformed_lines"] == 1


class TestTailSummary:
    """Crash-tolerant reading of a dead worker's manifest file."""

    def _write_events(self, path, events):
        with RunManifest(str(path), worker="w7") as manifest:
            for event, fields in events:
                manifest.emit(event, **fields)

    def test_clean_file_summary(self, tmp_path):
        from repro.obs.manifest import tail_summary

        path = tmp_path / "w7.jsonl"
        self._write_events(path, [
            ("worker_start", {"pid": 1}),
            ("claimed", {"job": "abc"}),
            ("finished", {"job": "abc", "wall_s": 0.1}),
        ])
        summary = tail_summary(str(path))
        assert summary["worker"] == "w7"
        assert summary["events"] == 3
        assert summary["counts"] == {
            "worker_start": 1, "claimed": 1, "finished": 1,
        }
        assert summary["last_event"] == "finished"
        assert summary["torn_tail"] is False

    def test_torn_final_line_is_tolerated(self, tmp_path):
        """A SIGKILL mid-write leaves a half-flushed last line; the
        summary must keep everything before it and flag the tear."""
        from repro.obs.manifest import tail_summary

        path = tmp_path / "w7.jsonl"
        self._write_events(path, [
            ("worker_start", {"pid": 1}),
            ("claimed", {"job": "abc"}),
        ])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "finish')  # no newline: torn by SIGKILL
        summary = tail_summary(str(path))
        assert summary["torn_tail"] is True
        assert summary["events"] == 2  # well-formed prefix preserved
        assert summary["counts"] == {"worker_start": 1, "claimed": 1}
        assert summary["last_event"] == "claimed"

    def test_missing_file_is_a_tear_not_a_crash(self, tmp_path):
        from repro.obs.manifest import tail_summary

        summary = tail_summary(str(tmp_path / "never-written.jsonl"))
        assert summary["torn_tail"] is True
        assert summary["events"] == 0
        assert summary["counts"] == {}

    def test_binary_garbage_line_skipped(self, tmp_path):
        from repro.obs.manifest import tail_summary

        path = tmp_path / "w7.jsonl"
        self._write_events(path, [("worker_start", {"pid": 1})])
        with open(path, "ab") as handle:
            handle.write(b"\x00\xff\xfe garbage \n")
        self._write_events(path, [("worker_exit", {"settled": 0})])
        summary = tail_summary(str(path))
        assert summary["torn_tail"] is True
        assert summary["events"] == 2
        assert summary["last_event"] == "worker_exit"
