"""Tests for the trace recorder."""

from repro.simkit import TraceRecorder
from repro.simkit.trace import NULL_TRACE


class TestRecording:
    def test_records_events(self):
        t = TraceRecorder()
        t.record(1.0, "core0", "enter_c6a")
        assert len(t) == 1
        event = t.events[0]
        assert event.time == 1.0
        assert event.source == "core0"
        assert event.kind == "enter_c6a"

    def test_disabled_records_nothing(self):
        t = TraceRecorder(enabled=False)
        t.record(1.0, "x", "y")
        assert len(t) == 0

    def test_null_trace_is_disabled(self):
        NULL_TRACE.record(1.0, "x", "y")
        assert len(NULL_TRACE) == 0

    def test_capacity_drops_and_counts(self):
        t = TraceRecorder(capacity=2)
        for i in range(5):
            t.record(float(i), "s", "k")
        assert len(t) == 2
        assert t.dropped == 3

    def test_payload_preserved(self):
        t = TraceRecorder()
        t.record(0.0, "s", "k", payload={"a": 1})
        assert t.events[0].payload == {"a": 1}


class TestFiltering:
    def _make(self):
        t = TraceRecorder()
        t.record(0.0, "core0", "wake")
        t.record(1.0, "core0", "sleep")
        t.record(2.0, "core1", "wake")
        return t

    def test_filter_by_source(self):
        t = self._make()
        assert len(t.filter(source="core0")) == 2

    def test_filter_by_kind(self):
        t = self._make()
        assert len(t.filter(kind="wake")) == 2

    def test_filter_by_both(self):
        t = self._make()
        events = t.filter(source="core0", kind="wake")
        assert len(events) == 1
        assert events[0].time == 0.0

    def test_counts_by_kind(self):
        t = self._make()
        assert t.counts_by_kind() == {"wake": 2, "sleep": 1}

    def test_clear(self):
        t = self._make()
        t.clear()
        assert len(t) == 0
        assert t.dropped == 0

    def test_iteration(self):
        t = self._make()
        assert [e.time for e in t] == [0.0, 1.0, 2.0]
