"""Bit-identity golden tests for the perf-optimised hot path.

Two layers of protection:

1. **Pinned digests** — every spec in ``tests/golden_specs.py`` must
   reproduce the exact ``RunResult`` captured *before* the fast path and
   incremental power accounting landed (``tests/golden_digests.json``,
   generated from the pre-optimisation tree). Any change to a single bit
   of any observable — latency percentiles incl. p99.9, powers,
   residencies, transition rates, node_detail — fails here.

2. **Fast/reference equivalence** — ``ServerNode(fast_path=False)``
   replays the identical scheduling sequence through the cancellable
   ``Event`` path with the O(cores) package-power re-sum; its results
   (and engine counters) must match the allocation-free fast path
   bit-for-bit on live objects, so the equivalence is enforced for any
   config, not just the pinned grid.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from golden_specs import GOLDEN_SPECS, digest_result, spec_label  # noqa: E402

from repro.server import ServerNode, named_configuration
from repro.workloads import memcached_workload, mysql_workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_digests.json")


def _load_golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("spec", GOLDEN_SPECS, ids=spec_label)
def test_pinned_digest(spec):
    golden = _load_golden()
    label = spec_label(spec)
    assert label in golden, f"no pinned digest for {label}; regenerate golden_digests.json"
    assert digest_result(spec.execute()) == golden[label], (
        f"RunResult for {label} is no longer bit-identical to the "
        "pre-optimisation baseline"
    )


def test_golden_file_covers_grid():
    """Every pinned digest corresponds to a live spec (no stale entries)."""
    golden = _load_golden()
    labels = {spec_label(spec) for spec in GOLDEN_SPECS}
    assert set(golden) == labels


class TestFastReferenceEquivalence:
    """fast_path=True and fast_path=False must be indistinguishable."""

    def _run(self, fast_path, workload_factory=memcached_workload, **kwargs):
        node = ServerNode(
            workload_factory(),
            named_configuration(kwargs.pop("config", "baseline")),
            qps=kwargs.pop("qps", 120_000),
            horizon=kwargs.pop("horizon", 0.03),
            seed=kwargs.pop("seed", 42),
            fast_path=fast_path,
            **kwargs,
        )
        result = node.run()
        return node, result

    @pytest.mark.parametrize("config", ["baseline", "AW", "T_No_C6"])
    def test_bit_identical_results(self, config):
        _, fast = self._run(True, config=config)
        _, reference = self._run(False, config=config)
        assert digest_result(fast) == digest_result(reference)

    def test_mysql_heavy_tail(self):
        _, fast = self._run(True, workload_factory=mysql_workload, qps=40_000)
        _, reference = self._run(
            False, workload_factory=mysql_workload, qps=40_000
        )
        assert digest_result(fast) == digest_result(reference)

    def test_engine_counters_match(self):
        """Both paths execute the same event sequence, so the perf
        counters — not just the physics — must agree exactly."""
        node_fast, fast = self._run(True)
        node_ref, reference = self._run(False)
        assert fast.events_processed == reference.events_processed
        assert fast.events_processed == node_fast.sim.events_processed
        assert node_fast.sim.events_processed == node_ref.sim.events_processed
        # The fast path pushes bare callbacks while the reference wraps
        # each in an Event object; heap occupancy is entry-for-entry
        # identical either way.
        assert fast.peak_pending_events == reference.peak_pending_events

    def test_incremental_power_total_matches_resum(self):
        """The fixed-point running total equals the exact sum of core
        powers at end of run (no drift after ~10^4 transitions)."""
        node, _ = self._run(True)
        import math

        exact = math.fsum(core.current_power for core in node.package.cores)
        assert node.package.core_power == pytest.approx(exact, abs=1e-12)
