"""CLI tests for the cluster surface: run/--params, sweep axes, cache LRU."""

import json

from repro.cli import EXIT_ERROR, EXIT_OK, EXIT_USAGE, main


class TestRunClusterExperiments:
    def test_fanout_tail_quick_renders_p99_vs_fanout_table(self, capsys):
        assert main(["run", "fanout_tail", "--quick", "--no-cache"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "fanout" in out
        assert "menu p99" in out
        assert "c1_only p99" in out

    def test_fanout_tail_quick_jsonl_records(self, capsys):
        assert main(
            ["run", "fanout_tail", "--quick", "--no-cache", "--format", "jsonl"]
        ) == EXIT_OK
        lines = [
            line for line in capsys.readouterr().out.splitlines() if line.strip()
        ]
        assert lines
        governors = set()
        for line in lines:
            record = json.loads(line)
            assert record["experiment"] == "fanout_tail"
            assert record["p99_latency"] > 0
            governors.add(record["governor"])
        assert len(governors) >= 2


class TestParamsFlag:
    def test_params_override_applies(self, capsys):
        assert main([
            "run", "fanout_tail", "--quick", "--no-cache",
            "--params", "nodes=2", "fanouts=1,2", "--format", "jsonl",
        ]) == EXIT_OK
        records = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines() if line.strip()
        ]
        assert {record["fanout"] for record in records} == {1, 2}
        assert all(record["nodes"] == 2 for record in records)

    def test_params_unknown_key_is_usage_error(self, capsys):
        assert main(
            ["run", "fanout_tail", "--quick", "--params", "bogus=1"]
        ) == EXIT_USAGE
        assert "valid keys" in capsys.readouterr().err

    def test_params_needs_exactly_one_experiment(self, capsys):
        assert main(
            ["run", "fanout_tail", "balancer_study", "--params", "nodes=2"]
        ) == EXIT_USAGE
        assert "exactly one" in capsys.readouterr().err

    def test_params_bad_value_is_usage_error(self, capsys):
        assert main(
            ["run", "fanout_tail", "--quick", "--params", "nodes=many"]
        ) == EXIT_USAGE
        assert "cannot parse" in capsys.readouterr().err

    def test_params_domain_invalid_value_fails_cleanly(self, capsys):
        # Type-valid but domain-invalid: surfaces as a clean run error
        # (exit 1, message on stderr), not a traceback.
        assert main(
            ["run", "fanout_tail", "--quick", "--no-cache",
             "--params", "nodes=0"]
        ) == EXIT_ERROR
        assert "run failed" in capsys.readouterr().err


class TestSweepClusterAxes:
    def test_cluster_sweep_runs(self, capsys, tmp_path):
        out_file = tmp_path / "points.jsonl"
        assert main([
            "sweep", "--kqps", "40", "--horizon", "0.02", "--no-cache",
            "--nodes", "2", "--fanout", "2", "--balancer", "jsq",
            "-o", str(out_file),
        ]) == EXIT_OK
        records = [
            json.loads(line) for line in out_file.read_text().splitlines()
        ]
        assert len(records) == 1
        assert records[0]["nodes"] == 2
        assert records[0]["fanout"] == 2
        assert records[0]["balancer"] == "jsq"

    def test_fanout_beyond_nodes_is_usage_error(self, capsys):
        assert main([
            "sweep", "--kqps", "40", "--nodes", "2", "--fanout", "4",
        ]) == EXIT_USAGE
        assert "fanout" in capsys.readouterr().err

    def test_grid_file_conflicts_with_cluster_flags(self, capsys, tmp_path):
        grid = tmp_path / "grid.jsonl"
        grid.write_text(json.dumps({
            "workload": "memcached", "config": "baseline", "qps": 20_000.0,
        }) + "\n")
        assert main([
            "sweep", "--grid", str(grid), "--nodes", "2",
        ]) == EXIT_USAGE
        assert "--nodes" in capsys.readouterr().err


class TestCachePruneMaxBytes:
    def test_prune_with_max_bytes_evicts(self, capsys, tmp_path):
        cache_dir = str(tmp_path)
        assert main([
            "sweep", "--kqps", "20", "40", "--horizon", "0.02",
            "--cache-dir", cache_dir,
        ]) == EXIT_OK
        capsys.readouterr()
        assert main(["cache", "prune", "--max-bytes", "0",
                     "--cache-dir", cache_dir]) == EXIT_OK
        out = capsys.readouterr().out
        assert "evicted 2 least-recently-used record(s)" in out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == EXIT_OK
        assert "current records: 0" in capsys.readouterr().out

    def test_prune_negative_max_bytes_is_usage_error(self, capsys, tmp_path):
        assert main([
            "cache", "prune", "--max-bytes", "-1", "--cache-dir", str(tmp_path),
        ]) == EXIT_USAGE

    def test_max_bytes_rejected_on_other_cache_actions(self, capsys, tmp_path):
        for action in ("stats", "clear"):
            assert main([
                "cache", action, "--max-bytes", "1", "--cache-dir", str(tmp_path),
            ]) == EXIT_USAGE
            assert "only applies" in capsys.readouterr().err
