"""Tests for the PPA model (Table 3) and the assembled AW design."""

import pytest

from repro.core import AgileWattsDesign
from repro.core.ppa import PPABreakdown, PPAEntry, PPAModel
from repro.errors import ConfigurationError, PowerModelError
from repro.units import MILLIWATT


class TestPPAEntries:
    def test_entry_rejects_inverted_range(self):
        with pytest.raises(PowerModelError):
            PPAEntry("X", "y", "z", c6a_power=(0.05, 0.01), c6ae_power=(0.0, 0.0))

    def test_entry_rejects_negative(self):
        with pytest.raises(PowerModelError):
            PPAEntry("X", "y", "z", c6a_power=(-0.01, 0.01), c6ae_power=(0.0, 0.0))


class TestTable3Reproduction:
    @pytest.fixture(scope="class")
    def breakdown(self) -> PPABreakdown:
        return PPAModel().build()

    def test_c6a_total_band(self, breakdown):
        # Paper: 290-315 mW.
        low, high = breakdown.total_power_range("C6A")
        assert low == pytest.approx(290 * MILLIWATT, rel=0.03)
        assert high == pytest.approx(315 * MILLIWATT, rel=0.03)

    def test_c6ae_total_band(self, breakdown):
        # Paper: 227-243 mW.
        low, high = breakdown.total_power_range("C6AE")
        assert low == pytest.approx(227 * MILLIWATT, rel=0.03)
        assert high == pytest.approx(243 * MILLIWATT, rel=0.03)

    def test_c6a_power_about_0_3w(self, breakdown):
        assert breakdown.c6a_power == pytest.approx(0.3, rel=0.05)

    def test_c6ae_power_about_0_23w(self, breakdown):
        assert breakdown.c6ae_power == pytest.approx(0.235, rel=0.05)

    def test_has_eight_component_rows(self, breakdown):
        assert len(breakdown.entries) == 8

    def test_fivr_static_loss_is_100mw(self, breakdown):
        static = [e for e in breakdown.entries if "static" in e.subcomponent][0]
        assert static.c6a_power == (0.1, 0.1)

    def test_adpll_is_7mw_in_both_states(self, breakdown):
        pll = [e for e in breakdown.entries if "ADPLL (kept locked)" in e.subcomponent][0]
        assert pll.c6a_power[0] == pytest.approx(7 * MILLIWATT)
        assert pll.c6ae_power[0] == pytest.approx(7 * MILLIWATT)

    def test_fivr_inefficiency_bands(self, breakdown):
        # Paper: 36-41 mW (C6A), 23-27 mW (C6AE).
        ineff = [e for e in breakdown.entries if "inefficiency" in e.subcomponent][0]
        assert 30 * MILLIWATT <= ineff.c6a_power[0] <= 40 * MILLIWATT
        assert ineff.c6a_power[1] <= 45 * MILLIWATT
        assert 20 * MILLIWATT <= ineff.c6ae_power[0] <= 27 * MILLIWATT

    def test_c6ae_cheaper_than_c6a_everywhere_or_equal(self, breakdown):
        for entry in breakdown.entries:
            assert entry.c6ae_power[0] <= entry.c6a_power[0] + 1e-12
            assert entry.c6ae_power[1] <= entry.c6a_power[1] + 1e-12

    def test_area_band(self, breakdown):
        low, high = breakdown.area_overhead_range
        assert 0.01 <= low <= 0.03
        assert 0.05 <= high <= 0.08

    def test_rows_rendering_includes_overall(self, breakdown):
        rows = breakdown.rows()
        assert rows[-1][0] == "Overall"
        assert len(rows) == 9

    def test_unknown_state_rejected(self, breakdown):
        with pytest.raises(PowerModelError):
            breakdown.total_power_range("C7")

    def test_idle_power_fraction_of_c0(self):
        # Paper: C6A/C6AE consume only ~7% and ~5% of C0 power.
        frac_a, frac_ae = PPAModel().idle_power_fraction_of_c0()
        assert 0.06 <= frac_a <= 0.08
        assert 0.05 <= frac_ae <= 0.065


class TestAgileWattsDesign:
    @pytest.fixture(scope="class")
    def design(self) -> AgileWattsDesign:
        return AgileWattsDesign()

    def test_all_verification_checks_pass(self, design):
        checks = design.verify()
        failed = [name for name, ok in checks.items() if not ok]
        assert failed == []

    def test_verify_or_raise_passes(self, design):
        design.verify_or_raise()  # must not raise

    def test_catalog_uses_derived_powers(self, design):
        catalog = design.catalog()
        assert catalog.get("C6A").power_watts == pytest.approx(design.c6a_power)
        assert catalog.get("C6AE").power_watts == pytest.approx(design.c6ae_power)

    def test_baseline_catalog_unmodified(self, design):
        assert "C1" in design.baseline_catalog()

    def test_hardware_round_trip_under_100ns(self, design):
        assert design.hardware_round_trip < 100e-9

    def test_frequency_penalty_1pct(self, design):
        assert design.frequency_penalty == pytest.approx(0.01)

    def test_transition_overhead_100ns(self, design):
        assert design.transition_overhead == pytest.approx(100e-9)

    def test_summary_lines_mention_key_numbers(self, design):
        text = "\n".join(design.summary_lines())
        assert "C6A idle power" in text
        assert "round trip" in text

    def test_broken_design_fails_verification(self):
        from repro.core.ufpg import UFPGConfig

        # Leaky gates (30-50% residual): the power-band checks must fail.
        bad = AgileWattsDesign(
            ufpg_config=UFPGConfig(residual_low=0.3, residual_high=0.5)
        )
        checks = bad.verify()
        assert not all(checks.values())
        with pytest.raises(ConfigurationError):
            bad.verify_or_raise()

    def test_breakdown_cached(self, design):
        assert design.breakdown is design.breakdown
