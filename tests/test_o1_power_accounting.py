"""O(1) power accounting: per-event cost must not grow with core count.

Before this optimisation, every C-state transition re-summed
``Core.current_power`` across **all** cores (``Package.core_power``), so
per-event cost was O(cores) and a 4x core count made each event ~4x more
expensive. With incremental accounting the package total is updated by
one delta per transition, so events-normalised cost is flat in core
count. The tests check both the structural property (no per-core work on
reads) and the wall-clock consequence (with a generous margin — the old
behaviour fails it by ~2x even on noisy hardware).
"""

import time

import pytest

from repro.server import ServerNode, named_configuration
from repro.uarch.core import INV_POWER_SCALE
from repro.workloads import memcached_workload


def _events_normalised_cost(cores: int, qps: float, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        node = ServerNode(
            memcached_workload(), named_configuration("baseline"),
            qps=qps, cores=cores, horizon=0.02, seed=7,
        )
        start = time.perf_counter()
        node.run()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / node.sim.events_processed)
    return best


def test_per_event_cost_flat_in_core_count():
    """10 vs 40 cores at matched per-core load: events-normalised wall
    time may not double (the old O(cores) re-sum made it ~4x)."""
    cost_10 = _events_normalised_cost(cores=10, qps=100_000)
    cost_40 = _events_normalised_cost(cores=40, qps=400_000)
    assert cost_40 < 2.0 * cost_10, (
        f"per-event cost grew with core count: {cost_10 * 1e9:.0f} ns/event "
        f"at 10 cores vs {cost_40 * 1e9:.0f} ns/event at 40 cores"
    )


def test_package_power_reads_do_no_per_core_work():
    """Reading package_power must not touch the cores at all."""
    node = ServerNode(
        memcached_workload(), named_configuration("baseline"),
        qps=50_000, cores=10, horizon=0.01, seed=3,
    )
    node.run()
    package = node.package
    reads = [0]
    original = type(package.cores[0]).current_power

    class Probe:
        def __get__(self, obj, objtype=None):
            reads[0] += 1
            return original.__get__(obj, objtype)

    core_cls = type(package.cores[0])
    try:
        core_cls.current_power = Probe()
        for _ in range(100):
            _ = package.package_power
            _ = package.core_power
    finally:
        core_cls.current_power = original
    assert reads[0] == 0


def test_incremental_total_is_exact_fixed_point():
    """The running total is an exact integer sum of per-core fixed-point
    powers — permutation- and history-independent."""
    node = ServerNode(
        memcached_workload(), named_configuration("AW"),
        qps=80_000, cores=10, horizon=0.02, seed=11,
    )
    node.run()
    package = node.package
    expected_int = sum(core.power_fixed_point for core in package.cores)
    assert package._core_power_int == expected_int
    assert package.core_power == expected_int * INV_POWER_SCALE


def test_package_energy_integral_matches_core_counters():
    """The O(1) piecewise package energy equals the per-core counters."""
    node = ServerNode(
        memcached_workload(), named_configuration("baseline"),
        qps=60_000, cores=4, horizon=0.02, seed=5,
    )
    node.run()
    horizon = node.horizon
    live = node.package.energy_joules(horizon)
    per_core = sum(
        core.snapshot(horizon).energy_joules for core in node.package.cores
    )
    assert live == pytest.approx(per_core, rel=1e-9)
