"""Tests for the repro.analyze static-analysis subsystem.

Fixture snippets are written under ``<tmp>/repro/<package>/...`` so the
path-based scoping (:func:`repro.analyze.rules._module_identity`) treats
them exactly like real simulation code: ``<tmp>/repro/cluster/x.py``
gets package ``cluster`` and is subject to the DET series, while
``<tmp>/repro/store/x.py`` is outside the simulation packages.
"""

import json
import os
import shutil

import pytest

from repro.analyze import (
    Finding,
    compare_to_baseline,
    load_baseline,
    render_json,
    report_from_dict,
    report_to_dict,
    rule_catalog,
    run_lint,
)
from repro.analyze.engine import analyze_file
from repro.analyze.rules import _module_identity
from repro.analyze.speccheck import (
    run_project_checks,
    update_codec_manifest,
)
from repro.cli import main
from repro.errors import ConfigurationError

REPO_SPEC = "src/repro/sweep/spec.py"
REPO_SERIALIZE = "src/repro/store/serialize.py"
REPO_METRICS = "src/repro/server/metrics.py"


def write_module(tmp_path, rel, source):
    """Write ``source`` at ``<tmp>/repro/<rel>`` and return the path."""
    path = tmp_path / "repro" / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return str(path)


def rule_ids(findings):
    return sorted(f.rule_id for f in findings)


def lint_one(tmp_path, rel, source):
    """Analyze a single fixture module; no project-level checks."""
    path = write_module(tmp_path, rel, source)
    return run_lint([path], project_checks=False)


# -- module identity / scoping ---------------------------------------------
def test_module_identity_below_repro_root():
    assert _module_identity("src/repro/cluster/cluster.py") == (
        "cluster/cluster.py", "cluster",
    )
    assert _module_identity("/tmp/x/repro/simkit/engine.py") == (
        "simkit/engine.py", "simkit",
    )
    # Top-level module: no package.
    assert _module_identity("src/repro/cli.py") == ("cli.py", None)
    # Not under a repro dir at all.
    assert _module_identity("scripts/tool.py") == ("tool.py", None)


# -- DET001: unseeded stdlib random ----------------------------------------
def test_det001_flags_module_level_random(tmp_path):
    result = lint_one(
        tmp_path, "cluster/picker.py",
        "import random\n\ndef pick(xs):\n    return random.choice(xs)\n",
    )
    assert rule_ids(result.findings) == ["DET001"]
    assert result.findings[0].line == 4


def test_det001_flags_from_import(tmp_path):
    result = lint_one(
        tmp_path, "server/jitter.py",
        "from random import random\n\ndef jitter():\n    return random()\n",
    )
    assert rule_ids(result.findings) == ["DET001"]


def test_det001_allows_seeded_instance(tmp_path):
    result = lint_one(
        tmp_path, "cluster/picker.py",
        "import random\n\ndef pick(xs, seed):\n"
        "    return random.Random(seed).choice(xs)\n",
    )
    assert result.findings == []


def test_det001_ignores_non_simulation_packages(tmp_path):
    result = lint_one(
        tmp_path, "store/salt.py",
        "import random\n\ndef salt():\n    return random.random()\n",
    )
    assert result.findings == []


# -- DET002: numpy global RandomState --------------------------------------
def test_det002_flags_global_numpy_random(tmp_path):
    result = lint_one(
        tmp_path, "workloads/noise.py",
        "import numpy as np\n\ndef noise(n):\n    return np.random.rand(n)\n",
    )
    assert rule_ids(result.findings) == ["DET002"]


def test_det002_flags_unseeded_constructor(tmp_path):
    result = lint_one(
        tmp_path, "workloads/noise.py",
        "import numpy as np\n\ndef rng():\n    return np.random.default_rng()\n",
    )
    assert rule_ids(result.findings) == ["DET002"]


def test_det002_allows_seeded_constructor(tmp_path):
    result = lint_one(
        tmp_path, "workloads/noise.py",
        "import numpy as np\n\ndef rng(seed):\n"
        "    return np.random.default_rng(seed)\n",
    )
    assert result.findings == []


# -- DET003: wall clocks ---------------------------------------------------
def test_det003_flags_time_and_datetime(tmp_path):
    result = lint_one(
        tmp_path, "simkit/stamp.py",
        "import time\nfrom datetime import datetime\n\n"
        "def stamp():\n    return time.time(), datetime.now()\n",
    )
    assert rule_ids(result.findings) == ["DET003", "DET003"]


def test_det003_allows_wall_clock_outside_simulation(tmp_path):
    result = lint_one(
        tmp_path, "store/mtime.py",
        "import time\n\ndef mtime():\n    return time.time()\n",
    )
    assert result.findings == []


# -- DET004: set iteration -------------------------------------------------
def test_det004_flags_set_iteration(tmp_path):
    result = lint_one(
        tmp_path, "governor/states.py",
        "def total(costs):\n"
        "    seen = {1.0, 2.0}\n"
        "    acc = 0.0\n"
        "    for value in seen:\n"
        "        acc += value\n"
        "    return acc\n",
    )
    assert rule_ids(result.findings) == ["DET004"]


def test_det004_accepts_sorted_wrap(tmp_path):
    result = lint_one(
        tmp_path, "governor/states.py",
        "def total(costs):\n"
        "    seen = {1.0, 2.0}\n"
        "    return sum(sorted(seen))\n",
    )
    assert result.findings == []


# -- DET005: merge-path accumulation ---------------------------------------
MERGE_LOOP = (
    "def merge(per_node):\n"
    "    acc = {}\n"
    "    for result in per_node:\n"
    "        for name, value in result.items():\n"
    "            acc[name] = acc.get(name, 0.0) + value\n"
    "    return acc\n"
)


def test_det005_flags_merge_path_modules_only(tmp_path):
    on_path = lint_one(tmp_path, "cluster/cluster.py", MERGE_LOOP)
    assert rule_ids(on_path.findings) == ["DET005"]
    off_path = lint_one(tmp_path, "cluster/helpers.py", MERGE_LOOP)
    assert off_path.findings == []


def test_det005_accepts_sorted_items(tmp_path):
    result = lint_one(
        tmp_path, "cluster/cluster.py",
        MERGE_LOOP.replace("result.items()", "sorted(result.items())"),
    )
    assert result.findings == []


def test_det005_flags_sum_over_dict_view(tmp_path):
    result = lint_one(
        tmp_path, "simkit/sketch.py",
        "def above(bins, cut):\n"
        "    return sum(c for i, c in bins.items() if i > cut)\n",
    )
    assert rule_ids(result.findings) == ["DET005"]


# -- DET006: id()/hash() ---------------------------------------------------
def test_det006_flags_id_and_hash(tmp_path):
    result = lint_one(
        tmp_path, "server/keys.py",
        "def key(event):\n    return id(event)\n",
    )
    assert rule_ids(result.findings) == ["DET006"]


# -- FAST001: fast-path contract -------------------------------------------
def test_fast001_flags_assignment_label_and_cancel(tmp_path):
    result = lint_one(
        tmp_path, "server/sched.py",
        "def go(sim, cb):\n"
        "    handle = sim.schedule_fast(0.1, cb)\n"
        "    sim.schedule_fast(0.1, cb, 'label')\n"
        "    sim.schedule_at_fast(0.2, cb, label='x')\n"
        "    sim.schedule_fast(0.3, cb).cancel()\n",
    )
    assert rule_ids(result.findings) == ["FAST001"] * 4


def test_fast001_accepts_plain_fast_calls(tmp_path):
    result = lint_one(
        tmp_path, "server/sched.py",
        "def go(sim, cb):\n"
        "    sim.schedule_fast(0.1, cb)\n"
        "    sim.schedule_at_fast(0.2, cb)\n"
        "    event = sim.schedule(0.3, cb, 'label')\n"
        "    event.cancel()\n",
    )
    assert result.findings == []


# -- FAST002: hot-path Event allocation ------------------------------------
def test_fast002_flags_event_allocation_on_hot_path(tmp_path):
    result = lint_one(
        tmp_path, "server/node.py",
        "from repro.simkit.engine import Event\n\n"
        "def make(t, seq, cb):\n    return Event(t, seq, cb)\n",
    )
    assert rule_ids(result.findings) == ["FAST002"]


def test_fast002_ignores_cold_modules(tmp_path):
    result = lint_one(
        tmp_path, "simkit/replay.py",
        "from repro.simkit.engine import Event\n\n"
        "def make(t, seq, cb):\n    return Event(t, seq, cb)\n",
    )
    assert result.findings == []


# -- suppressions ----------------------------------------------------------
def test_suppression_same_line_with_reason(tmp_path):
    result = lint_one(
        tmp_path, "cluster/picker.py",
        "import random\n\ndef pick(xs):\n"
        "    return random.choice(xs)"
        "  # repro: allow[DET001] fixture exercising suppression\n",
    )
    assert result.findings == []
    assert rule_ids(result.suppressed) == ["DET001"]
    assert result.suppressed[0].suppress_reason == (
        "fixture exercising suppression"
    )


def test_suppression_comment_line_above(tmp_path):
    result = lint_one(
        tmp_path, "cluster/picker.py",
        "import random\n\ndef pick(xs):\n"
        "    # repro: allow[DET001] fixture: suppressed from the line above\n"
        "    return random.choice(xs)\n",
    )
    assert result.findings == []
    assert rule_ids(result.suppressed) == ["DET001"]


def test_suppression_without_reason_is_ana001(tmp_path):
    result = lint_one(
        tmp_path, "cluster/picker.py",
        "import random\n\ndef pick(xs):\n"
        "    return random.choice(xs)  # repro: allow[DET001]\n",
    )
    # The bare allow is rejected, so the DET001 finding stays active too.
    assert rule_ids(result.findings) == ["ANA001", "DET001"]


def test_suppression_of_unknown_rule_is_ana002(tmp_path):
    result = lint_one(
        tmp_path, "cluster/clean.py",
        "X = 1  # repro: allow[NOPE999] whatever\n",
    )
    assert rule_ids(result.findings) == ["ANA002"]


def test_stale_suppression_is_ana003(tmp_path):
    result = lint_one(
        tmp_path, "cluster/clean.py",
        "X = 1  # repro: allow[DET001] nothing to suppress here\n",
    )
    assert rule_ids(result.findings) == ["ANA003"]


def test_syntax_error_is_ana004(tmp_path):
    result = lint_one(tmp_path, "cluster/broken.py", "def broken(:\n")
    assert rule_ids(result.findings) == ["ANA004"]


# -- SPEC project checks ---------------------------------------------------
def copy_project_fixture(tmp_path):
    """A mutable copy of the real spec/codec modules + matching manifest."""
    spec = write_module(
        tmp_path, "sweep/spec.py", open(REPO_SPEC).read()
    )
    serialize = write_module(
        tmp_path, "store/serialize.py", open(REPO_SERIALIZE).read()
    )
    metrics = write_module(
        tmp_path, "server/metrics.py", open(REPO_METRICS).read()
    )
    manifest = str(tmp_path / "codec_manifest.json")
    update_codec_manifest(serialize, manifest)
    return spec, serialize, metrics, manifest


def test_spec_checks_pass_on_real_tree(tmp_path):
    spec, serialize, metrics, manifest = copy_project_fixture(tmp_path)
    assert run_project_checks([spec, serialize, metrics], manifest) == []


def test_spec001_detects_field_missing_from_cache_key(tmp_path):
    spec, serialize, metrics, manifest = copy_project_fixture(tmp_path)
    source = open(spec).read()
    assert "self.governor," in source
    open(spec, "w").write(source.replace("self.governor,", "", 1))
    findings = run_project_checks([spec, serialize, metrics], manifest)
    assert rule_ids(findings) == ["SPEC001"]
    assert "governor" in findings[0].message
    assert findings[0].line > 1  # anchored at the field definition


def test_spec002_and_spec003_detect_dropped_codec_field(tmp_path):
    spec, serialize, metrics, manifest = copy_project_fixture(tmp_path)
    source = open(serialize).read()
    dropped = '"snoops_served": result.snoops_served,\n'
    assert dropped in source
    open(serialize, "w").write(source.replace(dropped, "", 1))
    findings = run_project_checks([spec, serialize, metrics], manifest)
    # Dropping the emit breaks codec coverage AND changes the codec
    # shape without a version bump.
    assert rule_ids(findings) == ["SPEC002", "SPEC003"]


def test_spec003_version_bump_requires_manifest_refresh(tmp_path):
    spec, serialize, metrics, manifest = copy_project_fixture(tmp_path)
    source = open(serialize).read()
    open(serialize, "w").write(
        source.replace("FORMAT_VERSION = 4", "FORMAT_VERSION = 5", 1)
    )
    findings = run_project_checks([spec, serialize, metrics], manifest)
    assert rule_ids(findings) == ["SPEC003"]
    assert "--update-codec-manifest" in findings[0].message
    # Refreshing the manifest (the documented workflow) clears it.
    update_codec_manifest(serialize, manifest)
    assert run_project_checks([spec, serialize, metrics], manifest) == []


def test_current_tree_lints_clean():
    result = run_lint(["src"])
    assert result.findings == []
    # Every suppression in the tree carries a written reason.
    assert all(f.suppress_reason for f in result.suppressed)


# -- reports and baseline --------------------------------------------------
def test_json_report_round_trip(tmp_path):
    result = lint_one(
        tmp_path, "cluster/picker.py",
        "import random\n\ndef pick(xs):\n    return random.choice(xs)\n",
    )
    data = json.loads(render_json(result))
    rebuilt = report_from_dict(data)
    assert rebuilt.findings == result.findings
    assert rebuilt.suppressed == result.suppressed
    assert rebuilt.files_analyzed == result.files_analyzed


def test_report_rejects_foreign_version(tmp_path):
    result = lint_one(tmp_path, "cluster/clean.py", "X = 1\n")
    data = report_to_dict(result)
    data["version"] = 999
    with pytest.raises(ConfigurationError):
        report_from_dict(data)


def test_baseline_fails_closed(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(ConfigurationError):
        load_baseline(str(missing))
    garbage = tmp_path / "bad.json"
    garbage.write_text("{not json")
    with pytest.raises(ConfigurationError):
        load_baseline(str(garbage))


def test_compare_to_baseline_matches_identity():
    finding = Finding(
        path="a.py", line=3, col=0, rule_id="DET001", message="m"
    )
    other = Finding(
        path="a.py", line=4, col=0, rule_id="DET001", message="m"
    )
    assert compare_to_baseline([finding, other], [finding]) == [other]


def test_committed_baseline_is_empty():
    assert load_baseline() == []


def test_rule_catalog_covers_all_series():
    ids = {rule_id for rule_id, _title, _rationale in rule_catalog()}
    assert {"DET001", "DET002", "DET003", "DET004", "DET005", "DET006",
            "FAST001", "FAST002", "SPEC001", "SPEC002", "SPEC003",
            "ANA001", "ANA002", "ANA003", "ANA004"} <= ids
    for _rule_id, title, rationale in rule_catalog():
        assert title and rationale


# -- engine behaviour ------------------------------------------------------
def test_findings_deduplicate_and_sort(tmp_path):
    path = write_module(
        tmp_path, "cluster/two.py",
        "import random\n\ndef two(xs):\n"
        "    a = random.choice(xs)\n"
        "    b = id(xs)\n"
        "    return a, b\n",
    )
    findings, _suppressions = analyze_file(path)
    assert findings == sorted(findings)
    assert rule_ids(findings) == ["DET001", "DET006"]


def test_run_lint_parallel_matches_serial(tmp_path):
    for index in range(20):
        write_module(
            tmp_path, f"cluster/mod_{index:02d}.py",
            "import random\n\ndef pick(xs):\n    return random.choice(xs)\n",
        )
    serial = run_lint([str(tmp_path)], jobs=1, project_checks=False)
    parallel = run_lint([str(tmp_path)], jobs=4, project_checks=False)
    assert serial.findings == parallel.findings
    assert len(serial.findings) == 20


def test_run_lint_rejects_missing_path(tmp_path):
    with pytest.raises(ConfigurationError):
        run_lint([str(tmp_path / "missing")])


# -- CLI -------------------------------------------------------------------
def test_cli_lint_clean_tree_exits_zero(capsys):
    assert main(["lint", "src"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_cli_lint_reports_findings_with_anchor(tmp_path, capsys):
    write_module(
        tmp_path, "cluster/bad.py",
        "import random\n\ndef pick(xs):\n    return random.choice(xs)\n",
    )
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert "bad.py:4" in out


def test_cli_lint_json_format(tmp_path, capsys):
    write_module(
        tmp_path, "cluster/bad.py",
        "import random\n\ndef pick(xs):\n    return random.choice(xs)\n",
    )
    assert main(["lint", str(tmp_path), "--format", "json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert [f["rule_id"] for f in report["findings"]] == ["DET001"]


def test_cli_lint_rules_catalog(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    assert "DET001" in out and "SPEC003" in out


def test_cli_lint_missing_path_is_usage_error(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "missing")]) == 2
    assert "lint failed" in capsys.readouterr().err


def test_cli_lint_no_baseline_flag(tmp_path, capsys):
    write_module(tmp_path, "cluster/clean.py", "X = 1\n")
    assert main(["lint", str(tmp_path), "--no-baseline"]) == 0


# -- acceptance scenarios from the issue -----------------------------------
def test_injected_random_in_cluster_fails_lint(tmp_path):
    """Copy the real cluster module, inject random.random(), expect a
    file:line DET001 diagnostic."""
    target = write_module(
        tmp_path, "cluster/cluster.py",
        open("src/repro/cluster/cluster.py").read()
        + "\n\ndef _jitter():\n    return random.random()\n",
    )
    result = run_lint([target], project_checks=False)
    assert rule_ids(result.findings) == ["DET001"]
    assert result.findings[0].anchor.startswith(target.replace("\\", "/")[:20])
    assert result.findings[0].line > 1


# -- repo-relative finding paths --------------------------------------------
def test_display_path_is_cwd_independent(tmp_path, monkeypatch):
    """Findings on repo files anchor repo-relative from any cwd, so the
    committed baseline matches no matter where lint runs."""
    from repro.analyze.paths import REPO_ROOT, display_path

    target = os.path.join(REPO_ROOT, "src", "repro", "cli.py")
    at_root = display_path(target)
    monkeypatch.chdir(tmp_path)
    assert display_path(target) == at_root == "src/repro/cli.py"
    # Non-repo files keep the old cwd-relative behavior.
    outside = tmp_path / "fixture.py"
    outside.write_text("X = 1\n")
    assert display_path(str(outside)) == "fixture.py"


# -- lint --fix-stale --------------------------------------------------------
def test_fix_stale_removes_comment_only_clause(tmp_path):
    from repro.analyze import fix_stale_suppressions

    path = write_module(
        tmp_path, "cluster/x.py",
        "X = 1  # repro: allow[DET001] nothing here triggers DET001\nY = 2\n",
    )
    result = run_lint([path])
    assert rule_ids(result.findings) == ["ANA003"]
    assert fix_stale_suppressions([path]) == 1
    assert open(path).read() == "X = 1\nY = 2\n"
    assert run_lint([path]).findings == []


def test_fix_stale_keeps_live_clause(tmp_path):
    from repro.analyze import fix_stale_suppressions

    path = write_module(
        tmp_path, "cluster/x.py",
        "import random\n\ndef pick(xs):\n"
        "    return random.choice(xs)"
        "  # repro: allow[DET001] fixture -- allow[DET002] stale\n",
    )
    assert rule_ids(run_lint([path]).findings) == ["ANA003"]
    assert fix_stale_suppressions([path]) == 1
    source = open(path).read()
    assert "allow[DET001] fixture" in source
    assert "DET002" not in source
    result = run_lint([path])
    assert result.findings == []
    assert rule_ids(result.suppressed) == ["DET001"]


def test_fix_stale_deletes_comment_only_line(tmp_path):
    from repro.analyze import fix_stale_suppressions

    path = write_module(
        tmp_path, "cluster/x.py",
        "X = 1\n# repro: allow[DET003] whole line is stale\nY = 2\n",
    )
    assert fix_stale_suppressions([path]) == 1
    assert open(path).read() == "X = 1\nY = 2\n"


def test_cli_lint_fix_stale(tmp_path, capsys):
    path = write_module(
        tmp_path, "cluster/x.py",
        "X = 1  # repro: allow[DET001] stale\n",
    )
    assert main(["lint", "--fix-stale", str(tmp_path)]) == 0
    assert "removed 1 stale suppression clause(s)" in capsys.readouterr().out
    assert open(path).read() == "X = 1\n"
    assert main(["lint", str(tmp_path), "--no-baseline"]) == 0
