"""Tests for the mergeable percentile sketch (repro.simkit.sketch).

The sharded-execution contract rests on three properties exercised here:

1. **Accuracy** — every quantile estimate is within the documented
   relative error ``alpha`` of the true order statistics, including on
   adversarial shapes (bimodal gaps, heavy-tail Pareto).
2. **Exact mergeability** — bucket counts are integers, so merging is
   commutative/associative and equivalent to sketching the concatenated
   stream; this is what makes shard merge order irrelevant.
3. **Drop-in tracker parity** — a sketch-backed ``PercentileTracker``
   reports p50/p99/p99.9 within bound of the exact tracker on real
   ``ServerNode`` runs, while count/mean/min/max stay exact.
"""

import json
import math
import pickle
import random

import pytest

from repro.errors import ConfigurationError
from repro.server import ServerNode, named_configuration
from repro.simkit.sketch import DDSketch
from repro.simkit.stats import PercentileTracker
from repro.workloads import memcached_workload, mysql_workload

QUANTILES = (0.5, 0.9, 0.99, 0.999)


def _assert_within_bound(values, alpha, quantiles=QUANTILES, max_bins=2048):
    """Each sketch quantile must land within ``alpha`` (relative) of the
    bracketing order statistics at the shared rank convention
    ``rank = q * (n - 1)``."""
    sketch = DDSketch(relative_error=alpha, max_bins=max_bins)
    sketch.add_many(values)
    data = sorted(values)
    n = len(data)
    slack = 1e-12  # float noise in the bound arithmetic itself
    for q in quantiles:
        rank = q * (n - 1)
        lo = data[math.floor(rank)]
        hi = data[math.ceil(rank)]
        est = sketch.quantile(q)
        assert lo * (1 - alpha - slack) <= est <= hi * (1 + alpha + slack), (
            f"q={q}: estimate {est} outside [{lo}, {hi}] +/- {alpha:.0%}"
        )


def _bimodal(n=12_000, seed=1234):
    """Two latency modes three decades apart with a hard gap between."""
    rng = random.Random(seed)
    values = []
    for _ in range(n):
        if rng.random() < 0.6:
            values.append(rng.gauss(1e-4, 1e-5))
        else:
            values.append(rng.gauss(5e-3, 5e-4))
    return [max(v, 1e-6) for v in values]


def _pareto(n=12_000, seed=99, xm=1e-5, shape=1.2):
    """Heavy-tail Pareto: the deep tail spans many decades."""
    rng = random.Random(seed)
    return [xm / (1.0 - rng.random()) ** (1.0 / shape) for _ in range(n)]


class TestDDSketchAccuracy:
    def test_bound_holds_on_bimodal(self):
        _assert_within_bound(_bimodal(), alpha=0.01)

    def test_bound_holds_on_pareto_tail(self):
        _assert_within_bound(_pareto(), alpha=0.01)

    def test_bound_holds_at_coarse_alpha(self):
        # A coarse sketch (5%) must still honour its own (wider) bound.
        _assert_within_bound(_pareto(seed=7), alpha=0.05)

    def test_collapse_keeps_tail_guarantee(self):
        # Past the bucket cap the *low* buckets collapse upward: the
        # bin count stays bounded, high quantiles (whose ranks land in
        # kept buckets) keep the bound, and collapsed low quantiles can
        # only be biased upward — never under-reported.
        values = _pareto(n=8_000, seed=3)
        sketch = DDSketch(relative_error=0.02, max_bins=128)
        sketch.add_many(values)
        assert sketch.num_bins <= 128
        data = sorted(values)
        n = len(data)
        for q in (0.99, 0.999):
            rank = q * (n - 1)
            lo, hi = data[math.floor(rank)], data[math.ceil(rank)]
            est = sketch.quantile(q)
            assert lo * 0.98 - 1e-12 <= est <= hi * 1.02 + 1e-12
        true_p50 = data[math.floor(0.5 * (n - 1))]
        assert sketch.quantile(0.5) >= true_p50 * 0.98 - 1e-12

    def test_count_sum_min_max_mean_exact(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0]
        sketch = DDSketch()
        sketch.add_many(values)
        assert sketch.count == 5
        assert sketch.sum == sum(values)
        assert sketch.minimum == 1.0
        assert sketch.maximum == 5.0
        assert sketch.mean == sum(values) / 5

    def test_zero_values_reported_as_zero(self):
        sketch = DDSketch()
        sketch.add_many([0.0, 0.0, 1.0])
        assert sketch.count == 3
        assert sketch.quantile(0.0) == 0.0
        assert sketch.quantile(1.0) == 1.0
        assert sketch.minimum == 0.0

    def test_single_value(self):
        sketch = DDSketch()
        sketch.add(2.5e-4)
        for q in (0.0, 0.5, 1.0):
            # min == max, so clamping pins every quantile exactly.
            assert sketch.quantile(q) == 2.5e-4

    def test_fraction_above(self):
        sketch = DDSketch(relative_error=0.01)
        sketch.add_many([1.0] * 90 + [100.0] * 10)
        assert sketch.fraction_above(10.0) == pytest.approx(0.1)
        assert sketch.fraction_above(-1.0) == 1.0
        assert DDSketch().fraction_above(1.0) == 0.0

    def test_invalid_parameters_rejected(self):
        for alpha in (0.0, 1.0, -0.5):
            with pytest.raises(ConfigurationError):
                DDSketch(relative_error=alpha)
        with pytest.raises(ConfigurationError):
            DDSketch(max_bins=1)

    def test_negative_value_rejected(self):
        with pytest.raises(ConfigurationError):
            DDSketch().add(-1e-6)

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError):
            DDSketch().quantile(0.5)

    def test_out_of_range_quantile_rejected(self):
        sketch = DDSketch()
        sketch.add(1.0)
        with pytest.raises(ConfigurationError):
            sketch.quantile(1.5)
        with pytest.raises(ConfigurationError):
            sketch.quantile(-0.1)


class TestDDSketchMerge:
    def _pair(self):
        a, b = DDSketch(), DDSketch()
        a.add_many(_bimodal(n=4_000, seed=11))
        b.add_many(_pareto(n=3_000, seed=12))
        return a, b

    def test_merge_equals_combined_stream(self):
        xs = _bimodal(n=4_000, seed=21)
        ys = _pareto(n=3_000, seed=22)
        a, b, combined = DDSketch(), DDSketch(), DDSketch()
        a.add_many(xs)
        b.add_many(ys)
        combined.add_many(xs + ys)
        merged = a.merge(b)
        # Buckets, counts and extremes are exact, so every quantile of
        # the merged sketch equals the combined-stream sketch exactly.
        state_m, state_c = merged.to_state(), combined.to_state()
        assert state_m["bin_indices"] == state_c["bin_indices"]
        assert state_m["bin_counts"] == state_c["bin_counts"]
        assert merged.count == combined.count
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum
        for q in QUANTILES:
            assert merged.quantile(q) == combined.quantile(q)
        assert merged.sum == pytest.approx(combined.sum, rel=1e-12)

    def test_merge_commutative_bit_for_bit(self):
        a, b = self._pair()
        # Integer bucket addition and IEEE float addition are both
        # commutative, so the full state matches exactly.
        assert a.merge(b).to_state() == b.merge(a).to_state()

    def test_merge_associative(self):
        # Integer-valued observations make the float sums exact, so
        # associativity holds on the full state, not just the buckets.
        rng = random.Random(5)
        sketches = []
        for _ in range(3):
            s = DDSketch()
            s.add_many(float(rng.randint(1, 10_000)) for _ in range(2_000))
            sketches.append(s)
        a, b, c = sketches
        assert a.merge(b).merge(c).to_state() == a.merge(b.merge(c)).to_state()

    def test_merge_does_not_mutate_inputs(self):
        a, b = self._pair()
        before_a, before_b = a.to_state(), b.to_state()
        a.merge(b)
        assert a.to_state() == before_a
        assert b.to_state() == before_b

    def test_merge_with_empty_is_identity(self):
        a, _ = self._pair()
        merged = a.merge(DDSketch())
        assert merged.to_state() == a.to_state()

    def test_mismatched_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            DDSketch(relative_error=0.01).merge(DDSketch(relative_error=0.02))
        with pytest.raises(ConfigurationError):
            DDSketch(max_bins=128).merge(DDSketch(max_bins=256))


class TestDDSketchState:
    def test_round_trip_identical(self):
        sketch = DDSketch(relative_error=0.02, max_bins=512)
        sketch.add_many(_pareto(n=2_000, seed=31))
        rebuilt = DDSketch.from_state(sketch.to_state())
        assert rebuilt.to_state() == sketch.to_state()
        for q in QUANTILES:
            assert rebuilt.quantile(q) == sketch.quantile(q)

    def test_round_trip_survives_json(self):
        sketch = DDSketch()
        sketch.add_many(_bimodal(n=2_000, seed=32))
        rebuilt = DDSketch.from_state(json.loads(json.dumps(sketch.to_state())))
        assert rebuilt.to_state() == sketch.to_state()

    def test_empty_round_trip(self):
        rebuilt = DDSketch.from_state(DDSketch().to_state())
        assert rebuilt.count == 0
        with pytest.raises(ValueError):
            rebuilt.quantile(0.5)

    def test_corrupt_state_rejected(self):
        state = DDSketch().to_state()
        broken = dict(state)
        del broken["bin_counts"]
        with pytest.raises(ConfigurationError):
            DDSketch.from_state(broken)
        lopsided = dict(state)
        lopsided["bin_indices"] = [1, 2]
        lopsided["bin_counts"] = [3]
        with pytest.raises(ConfigurationError):
            DDSketch.from_state(lopsided)


class TestSketchBackedTracker:
    def test_invalid_sketch_error_rejected(self):
        with pytest.raises(ConfigurationError):
            PercentileTracker(sketch_error=0.0)
        with pytest.raises(ConfigurationError):
            PercentileTracker(sketch_error=1.5)

    def test_backend_introspection(self):
        assert PercentileTracker().sketch_error is None
        assert PercentileTracker().sketch is None
        tracker = PercentileTracker(sketch_error=0.02)
        assert tracker.sketch_error == 0.02
        assert tracker.sketch is not None

    def test_tracker_percentiles_within_bound_of_exact(self):
        values = _bimodal(n=8_000, seed=41)
        exact = PercentileTracker()
        sketched = PercentileTracker(sketch_error=0.01)
        exact.add_many(values)
        sketched.add_many(values)
        assert sketched.count == exact.count
        # 2*alpha: alpha of sketch error plus up to one interpolation gap.
        for p in (50, 95, 99, 99.9):
            assert sketched.percentile(p) == pytest.approx(
                exact.percentile(p), rel=0.02
            )
        assert sketched.mean == pytest.approx(exact.mean, rel=1e-9)

    def test_samples_unavailable_in_sketch_mode(self):
        tracker = PercentileTracker(sketch_error=0.01)
        tracker.add(1.0)
        with pytest.raises(ConfigurationError):
            tracker.samples

    def test_merge_mixed_backends_rejected(self):
        exact, sketched = PercentileTracker(), PercentileTracker(sketch_error=0.01)
        exact.add(1.0)
        sketched.add(1.0)
        with pytest.raises(ConfigurationError):
            exact.merge(sketched)
        with pytest.raises(ConfigurationError):
            PercentileTracker.merge_all([sketched, exact])

    def test_merge_all_never_aliases_inputs(self):
        a = PercentileTracker(sketch_error=0.01)
        b = PercentileTracker(sketch_error=0.01)
        a.add_many([1.0, 2.0])
        b.add(3.0)
        merged = PercentileTracker.merge_all([a, b])
        a.add(1_000.0)
        assert merged.count == 3
        assert merged.sketch.maximum == 3.0

    def test_sketch_merge_order_independent(self):
        trackers = []
        for seed in (51, 52, 53):
            t = PercentileTracker(sketch_error=0.01)
            t.add_many(_pareto(n=1_000, seed=seed))
            trackers.append(t)
        forward = PercentileTracker.merge_all(trackers)
        backward = PercentileTracker.merge_all(trackers[::-1])
        assert forward.sketch.to_state()["bin_counts"] == (
            backward.sketch.to_state()["bin_counts"]
        )
        for p in (50, 99, 99.9):
            assert forward.percentile(p) == backward.percentile(p)

    def test_pickle_round_trip_keeps_hot_path_bound(self):
        tracker = PercentileTracker(sketch_error=0.01)
        tracker.add_many([1.0, 2.0, 3.0])
        clone = pickle.loads(pickle.dumps(tracker))
        assert clone.count == 3
        clone.add(4.0)  # the re-bound add must hit the sketch
        assert clone.sketch.count == 4
        assert clone.sketch.maximum == 4.0


class TestSketchOnServerNode:
    """Sketch vs exact on real simulated latency distributions."""

    def _run(self, workload_factory, sketch_error, qps):
        node = ServerNode(
            workload_factory(),
            named_configuration("baseline"),
            qps=qps,
            horizon=0.05,
            seed=42,
            sketch_error=sketch_error,
        )
        return node.run()

    @pytest.mark.parametrize(
        "workload_factory,qps",
        [(memcached_workload, 80_000), (mysql_workload, 30_000)],
        ids=["memcached", "mysql"],
    )
    def test_p50_p99_p999_within_bound(self, workload_factory, qps):
        exact = self._run(workload_factory, None, qps)
        sketched = self._run(workload_factory, 0.01, qps)
        # Same seed, same spec: identical simulated latency stream.
        assert sketched.completed == exact.completed
        assert sketched.server_latency.count == exact.server_latency.count
        # The documented bound, against the bracketing order statistics
        # (the exact tracker interpolates between them, so a plain
        # relative comparison would conflate sketch error with the
        # interpolation gap at deep-tail ranks).
        data = sorted(exact.server_latency.samples)
        n = len(data)
        for p in (50, 99, 99.9):
            rank = (p / 100.0) * (n - 1)
            lo, hi = data[math.floor(rank)], data[math.ceil(rank)]
            est = sketched.server_latency.percentile(p)
            assert lo * 0.99 - 1e-12 <= est <= hi * 1.01 + 1e-12
        assert sketched.avg_latency == pytest.approx(exact.avg_latency, rel=1e-9)
        assert sketched.server_latency.sketch.minimum == (
            exact.server_latency.percentile(0)
        )
        assert sketched.server_latency.sketch.maximum == (
            exact.server_latency.percentile(100)
        )

    def test_record_labels_sketch_error(self):
        sketched = self._run(memcached_workload, 0.01, 60_000)
        record = sketched.to_record()
        assert record["latency_sketch_error"] == 0.01
        exact = self._run(memcached_workload, None, 60_000)
        assert "latency_sketch_error" not in exact.to_record()
