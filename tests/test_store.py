"""Tests for the persistent result store (repro.store)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.store import (
    FORMAT_VERSION,
    ResultStore,
    code_version_salt,
    decode_samples,
    encode_samples,
    result_from_dict,
    result_to_dict,
)
from repro.sweep import ScenarioSpec, SweepRunner


def _spec(**overrides):
    base = dict(
        workload="memcached", config="baseline", qps=20_000,
        horizon=0.02, seed=7,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


@pytest.fixture(scope="module")
def result():
    return _spec().execute()


class TestSerialize:
    def test_sample_blob_round_trip_is_exact(self):
        samples = [1.5e-6, 0.0, 3.141592653589793, 7.2e-5, 1e308]
        assert decode_samples(encode_samples(samples)) == samples

    def test_empty_samples(self):
        assert decode_samples(encode_samples([])) == []

    def test_result_round_trip_is_exact(self, result):
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.avg_core_power == result.avg_core_power
        assert rebuilt.package_power == result.package_power
        assert rebuilt.completed == result.completed
        assert rebuilt.residency == result.residency
        assert rebuilt.transitions_per_second == result.transitions_per_second
        assert rebuilt.server_latency.mean == result.server_latency.mean
        assert rebuilt.server_latency.p99 == result.server_latency.p99
        assert rebuilt.server_latency.percentile(37.5) == (
            result.server_latency.percentile(37.5)
        )
        assert rebuilt.turbo_grant_rate == result.turbo_grant_rate
        assert rebuilt.snoops_served == result.snoops_served

    def test_record_is_json_safe(self, result):
        text = json.dumps(result_to_dict(result))
        rebuilt = result_from_dict(json.loads(text))
        assert rebuilt.avg_latency == result.avg_latency

    def test_foreign_format_rejected(self, result):
        data = result_to_dict(result)
        data["format"] = 999
        with pytest.raises(ConfigurationError):
            result_from_dict(data)

    def test_missing_field_rejected(self, result):
        data = result_to_dict(result)
        del data["avg_core_power"]
        with pytest.raises(ConfigurationError):
            result_from_dict(data)


class TestSketchSerialization:
    """Codec v3: sketch-backed latency round-trips its bucket state."""

    @pytest.fixture(scope="class")
    def sketch_results(self):
        return [
            _spec(seed=seed, sketch_error=0.01).execute() for seed in (7, 8)
        ]

    def test_record_carries_sketch_not_samples(self, sketch_results):
        data = result_to_dict(sketch_results[0])
        assert data["format"] == FORMAT_VERSION
        assert "server_latency_sketch" in data
        assert "server_latency_samples" not in data

    def test_sketch_round_trip_is_exact(self, sketch_results):
        original = sketch_results[0]
        rebuilt = result_from_dict(
            json.loads(json.dumps(result_to_dict(original)))
        )
        assert rebuilt.server_latency.sketch_error == 0.01
        assert rebuilt.server_latency.sketch.to_state() == (
            original.server_latency.sketch.to_state()
        )
        for p in (50, 99, 99.9):
            assert rebuilt.server_latency.percentile(p) == (
                original.server_latency.percentile(p)
            )
        assert rebuilt.completed == original.completed

    def test_merge_after_decode_equals_merge_before_encode(
        self, sketch_results
    ):
        from repro.simkit.stats import PercentileTracker

        a, b = sketch_results
        before = PercentileTracker.merge_all(
            [a.server_latency, b.server_latency]
        )
        decoded = [
            result_from_dict(result_to_dict(r)).server_latency
            for r in (a, b)
        ]
        after = PercentileTracker.merge_all(decoded)
        assert after.sketch.to_state() == before.sketch.to_state()

    def test_v2_row_with_raw_samples_still_decodes(self, result):
        # A pre-sketch row: format marker 2, exact sample blob. Built
        # directly (the writer no longer emits v2) to pin back-compat.
        data = result_to_dict(result)
        assert "server_latency_samples" in data
        data["format"] = 2
        rebuilt = result_from_dict(data)
        assert rebuilt.server_latency.sketch_error is None
        assert rebuilt.server_latency.p99 == result.server_latency.p99
        assert rebuilt.completed == result.completed

    def test_v1_format_rejected(self, result):
        data = result_to_dict(result)
        data["format"] = 1
        with pytest.raises(ConfigurationError):
            result_from_dict(data)

    def test_corrupt_sketch_state_is_a_miss(self, sketch_results):
        data = result_to_dict(sketch_results[0])
        data["server_latency_sketch"] = {"relative_error": 0.01}
        with pytest.raises(ConfigurationError):
            result_from_dict(data)

    def test_store_round_trip_sketch_result(self, tmp_path, sketch_results):
        original = sketch_results[0]
        spec = _spec(sketch_error=0.01)
        store = ResultStore(tmp_path, salt="s1")
        store.put(spec.cache_key, original, spec=spec)
        loaded = store.get(spec.cache_key)
        assert loaded is not None
        assert loaded.server_latency.sketch.to_state() == (
            original.server_latency.sketch.to_state()
        )

    def test_sketch_and_exact_specs_have_distinct_cache_keys(self):
        exact, sketched = _spec(), _spec(sketch_error=0.01)
        assert exact.cache_key != sketched.cache_key
        # Exact mode keeps the pre-sketch key shape (store compatible).
        assert len(exact.cache_key) + 1 == len(sketched.cache_key)


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path, result):
        store = ResultStore(tmp_path, salt="s1")
        spec = _spec()
        assert store.get(spec.cache_key) is None
        store.put(spec.cache_key, result, spec=spec)
        loaded = store.get(spec.cache_key)
        assert loaded is not None
        assert loaded.avg_core_power == result.avg_core_power
        assert loaded.server_latency.p99 == result.server_latency.p99
        assert spec.cache_key in store
        assert len(store) == 1

    def test_shared_across_instances(self, tmp_path, result):
        spec = _spec()
        ResultStore(tmp_path, salt="s1").put(spec.cache_key, result)
        other = ResultStore(tmp_path, salt="s1")
        assert other.get(spec.cache_key).completed == result.completed

    def test_salt_invalidates(self, tmp_path, result):
        spec = _spec()
        ResultStore(tmp_path, salt="v1").put(spec.cache_key, result)
        assert ResultStore(tmp_path, salt="v2").get(spec.cache_key) is None
        # the v1 record is still on disk, just invisible under v2
        v2 = ResultStore(tmp_path, salt="v2")
        assert len(v2) == 0
        assert v2.total_records() == 1
        assert v2.prune_stale() == 1
        assert v2.total_records() == 0

    def test_delete_and_clear(self, tmp_path, result):
        store = ResultStore(tmp_path, salt="s1")
        a, b = _spec(), _spec(seed=8)
        store.put(a.cache_key, result)
        store.put(b.cache_key, result)
        store.delete(a.cache_key)
        assert store.get(a.cache_key) is None
        assert store.get(b.cache_key) is not None
        store.clear()
        assert len(store) == 0

    def test_corrupt_row_is_a_miss(self, tmp_path, result):
        import sqlite3

        store = ResultStore(tmp_path, salt="s1")
        spec = _spec()
        store.put(spec.cache_key, result)
        with sqlite3.connect(str(store.path)) as conn:
            conn.execute("UPDATE results SET result = 'not json'")
        assert store.get(spec.cache_key) is None
        # the corrupt row was dropped, not left to fail forever
        assert store.total_records() == 0

    def test_truncated_sample_blob_is_a_miss(self, tmp_path, result):
        # A blob whose payload is not a whole number of doubles raises
        # struct.error on unpack; it must read as a miss, not a crash.
        import base64
        import sqlite3
        import zlib

        store = ResultStore(tmp_path, salt="s1")
        spec = _spec()
        store.put(spec.cache_key, result)
        bad_blob = base64.b64encode(zlib.compress(b"\x00" * 11)).decode()
        with sqlite3.connect(str(store.path)) as conn:
            conn.execute(
                "UPDATE results SET result = json_set(result, "
                "'$.server_latency_samples', ?)",
                (bad_blob,),
            )
        assert store.get(spec.cache_key) is None

    def test_get_many_batches_hits_and_misses(self, tmp_path, result):
        store = ResultStore(tmp_path, salt="s1")
        a, b, missing = _spec(seed=1), _spec(seed=2), _spec(seed=3)
        store.put(a.cache_key, result)
        store.put(b.cache_key, result)
        found = store.get_many([a.cache_key, b.cache_key, missing.cache_key])
        assert set(found) == {a.cache_key, b.cache_key}
        assert found[a.cache_key].completed == result.completed
        # under a different salt nothing is visible
        assert ResultStore(tmp_path, salt="s2").get_many([a.cache_key]) == {}

    def test_code_version_salt_is_stable(self):
        salt = code_version_salt()
        assert salt == code_version_salt()
        assert len(salt) == 16
        int(salt, 16)  # hex

    def test_default_salt_is_code_version(self, tmp_path):
        assert ResultStore(tmp_path).salt == code_version_salt()


class TestRunnerIntegration:
    def test_round_trip_across_runner_instances(self, tmp_path):
        """Two runners with separate memo caches share via the store."""
        store = ResultStore(tmp_path, salt="s1")
        spec = _spec()
        first = SweepRunner(cache={}, store=store).run(spec)

        simulated = []
        second_runner = SweepRunner(
            cache={}, store=store, progress=lambda d, t, s: simulated.append(s)
        )
        second = second_runner.run(spec)
        assert simulated == []  # nothing simulated: pure store hit
        assert second.avg_core_power == first.avg_core_power
        assert second.server_latency.p99 == first.server_latency.p99
        assert second.residency == first.residency

    def test_version_salt_forces_resimulation(self, tmp_path):
        spec = _spec()
        SweepRunner(cache={}, store=ResultStore(tmp_path, salt="v1")).run(spec)

        simulated = []
        runner = SweepRunner(
            cache={},
            store=ResultStore(tmp_path, salt="v2"),
            progress=lambda d, t, s: simulated.append(s),
        )
        runner.run(spec)
        assert len(simulated) == 1  # store miss under the new salt

    def test_broken_store_is_never_fatal(self):
        # A store that starts erroring mid-sweep (full disk, locked db)
        # must be dropped, not abort the run.
        class BrokenStore:
            def get(self, key):
                raise OSError("disk on fire")

            def put(self, key, result, spec=None):
                raise OSError("disk on fire")

        messages = []
        runner = SweepRunner(cache={}, store=BrokenStore(), log=messages.append)
        result = runner.run(_spec())
        assert result.completed > 0
        assert any("store disabled" in m for m in messages)

    def test_store_hits_logged(self, tmp_path):
        store = ResultStore(tmp_path, salt="s1")
        spec = _spec()
        SweepRunner(cache={}, store=store).run(spec)
        messages = []
        SweepRunner(cache={}, store=store, log=messages.append).run(spec)
        assert "0 to simulate" in messages[0]
        assert "1 from store" in messages[0]

    def test_parallel_runner_fills_store(self, tmp_path):
        from repro.sweep import ScenarioGrid

        store = ResultStore(tmp_path, salt="s1")
        grid = ScenarioGrid.product(
            configs=["baseline", "AW"], qps=[10_000, 20_000],
            horizons=[0.02], seeds=[7],
        )
        SweepRunner(executor="process", jobs=2, cache={}, store=store).run_grid(grid)
        assert len(store) == len(grid)
        # a fresh serial runner answers the whole grid from disk
        simulated = []
        fresh = SweepRunner(
            cache={}, store=store, progress=lambda d, t, s: simulated.append(s)
        )
        results = fresh.run_grid(grid)
        assert simulated == []
        assert all(r.completed > 0 for r in results)


class TestBatchedWrites:
    def test_put_many_round_trip(self, tmp_path, result):
        store = ResultStore(tmp_path, salt="s1")
        specs = [_spec(), _spec(qps=30_000)]
        store.put_many([(s.cache_key, result, s) for s in specs])
        assert len(store) == 2
        found = store.get_many([s.cache_key for s in specs])
        assert set(found) == {s.cache_key for s in specs}
        for got in found.values():
            assert got.avg_core_power == result.avg_core_power
            assert got.server_latency.p99 == result.server_latency.p99

    def test_put_many_empty_is_noop(self, tmp_path):
        store = ResultStore(tmp_path, salt="s1")
        store.put_many([])
        assert len(store) == 0

    def test_put_many_last_writer_wins(self, tmp_path, result):
        store = ResultStore(tmp_path, salt="s1")
        spec = _spec()
        store.put_many([(spec.cache_key, result, spec)])
        store.put_many([(spec.cache_key, result, None)])
        assert len(store) == 1

    def test_run_many_flushes_one_batch(self, tmp_path):
        """The runner writes back via a single put_many per run_many."""
        calls = []

        class SpyStore(ResultStore):
            def put_many(self, items):
                items = list(items)
                calls.append(len(items))
                super().put_many(items)

            def put(self, key, result, spec=None):  # pragma: no cover
                raise AssertionError("per-point put must not be used")

        store = SpyStore(tmp_path, salt="s1")
        specs = [_spec(), _spec(qps=30_000), _spec(qps=40_000)]
        SweepRunner(cache={}, store=store).run_many(specs)
        assert calls == [3]
        assert len(store) == 3

    def test_raise_policy_still_banks_completed_results(self, tmp_path):
        """The finally-flush persists results banked before an abort."""
        from repro.sweep.spec import WORKLOAD_FACTORIES, register_workload

        def explode():
            raise RuntimeError("kaboom")

        register_workload("explosive_store_test", explode)
        try:
            store = ResultStore(tmp_path, salt="s1")
            specs = [
                _spec(),
                _spec(workload="explosive_store_test"),
            ]
            with pytest.raises(RuntimeError, match="kaboom"):
                SweepRunner(cache={}, store=store).run_many(specs)
            # the good point completed first and must have been persisted
            assert store.get(specs[0].cache_key) is not None
        finally:
            del WORKLOAD_FACTORIES["explosive_store_test"]


# -- multi-process write safety ----------------------------------------------
#
# The distributed executor points N worker *processes* at the ONE shared
# sqlite store. WAL mode plus short-lived connections with a busy
# timeout is the whole concurrency story, so prove it holds: two
# processes hammering ``put_many`` concurrently must lose no writes and
# must keep the LRU clock (``last_access``) monotonic per row.

def _hammer_put_many(store_dir, label, n, batch):
    """Spawn target: commit ``n`` rows in many small contending batches."""
    store = ResultStore(store_dir, salt="mp")
    result = _spec(horizon=0.005, seed=0).execute()
    for start in range(0, n, batch):
        store.put_many(
            [
                ((label, i), result, None)
                for i in range(start, min(start + batch, n))
            ]
        )


class TestMultiProcessWriters:
    def test_concurrent_put_many_loses_no_writes(self, tmp_path):
        import multiprocessing
        import sqlite3

        n = 40
        ctx = multiprocessing.get_context("spawn")
        writers = [
            ctx.Process(
                target=_hammer_put_many,
                args=(str(tmp_path), label, n, 4),
            )
            for label in ("alpha", "beta")
        ]
        for proc in writers:
            proc.start()
        for proc in writers:
            proc.join(120.0)
            assert proc.exitcode == 0
        store = ResultStore(tmp_path, salt="mp")
        assert len(store) == 2 * n  # every row from both writers landed
        for label in ("alpha", "beta"):
            for i in range(n):
                assert store.get((label, i)) is not None

        # The LRU clock: the get() sweep above must only ever move
        # last_access forward past the write-time stamps.
        conn = sqlite3.connect(str(store.path))
        try:
            rows = conn.execute(
                "SELECT created_at, last_access FROM results"
            ).fetchall()
        finally:
            conn.close()
        assert len(rows) == 2 * n
        for created_at, last_access in rows:
            assert last_access is not None
            assert last_access >= created_at
