"""Tests for the analytical models: Eqs. 1-4, validation, snoops, cost."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytical import (
    AgileWattsPowerModel,
    CostModel,
    average_power,
    ideal_savings,
    motivation_table,
    snoop_bounds,
    turbo_mode_savings,
    validate_power_model,
    yearly_savings_musd,
)
from repro.analytical.motivation import baseline_average_power
from repro.core import AgileWattsDesign
from repro.errors import ConfigurationError


class TestEq2AveragePower:
    def test_pure_c0(self):
        assert average_power({"C0": 1.0}) == pytest.approx(4.0)

    def test_kv_store_at_20pct(self):
        # The Sec 2 key-value example: 20% C0 + 80% C1.
        assert average_power({"C0": 0.2, "C1": 0.8}) == pytest.approx(1.952)

    def test_power_override(self):
        power = average_power({"C0": 1.0}, power_overrides={"C0": 5.5})
        assert power == pytest.approx(5.5)

    def test_non_normalised_rejected(self):
        with pytest.raises(ConfigurationError):
            average_power({"C0": 0.5})

    def test_unknown_state_rejected(self):
        from repro.errors import CStateError

        with pytest.raises(CStateError):
            average_power({"C0": 0.5, "C9": 0.5})

    @given(
        c0=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50)
    def test_bounded_by_extreme_states(self, c0):
        residency = {"C0": c0, "C6": 1.0 - c0}
        power = average_power(residency)
        assert 0.1 - 1e-9 <= power <= 4.0 + 1e-9


class TestEq1Motivation:
    def test_search_50pct_is_23pct(self):
        savings = ideal_savings({"C0": 0.50, "C1": 0.45, "C6": 0.05})
        assert savings == pytest.approx(0.227, abs=0.005)

    def test_search_25pct_is_41pct(self):
        savings = ideal_savings({"C0": 0.25, "C1": 0.55, "C6": 0.20})
        assert savings == pytest.approx(0.407, abs=0.005)

    def test_kv_20pct_is_55pct(self):
        savings = ideal_savings({"C0": 0.20, "C1": 0.80, "C6": 0.00})
        assert savings == pytest.approx(0.549, abs=0.005)

    def test_motivation_table_rows(self):
        rows = motivation_table()
        assert len(rows) == 3
        fractions = [savings for _, _, savings in rows]
        assert fractions == sorted(fractions)  # 23% < 41% < 55%

    def test_lighter_load_saves_more(self):
        # Sec 2: "Lighter loads can have even higher power savings."
        heavy = ideal_savings({"C0": 0.6, "C1": 0.4})
        light = ideal_savings({"C0": 0.1, "C1": 0.9})
        assert light > heavy

    def test_extra_states_rejected(self):
        with pytest.raises(ConfigurationError):
            baseline_average_power({"C0": 0.5, "C1E": 0.5})


class TestEq3AWModel:
    def test_substitution_maps_c1_to_c6a(self):
        out = AgileWattsPowerModel.substitute_states({"C0": 0.2, "C1": 0.5, "C1E": 0.3})
        assert out == {"C0": 0.2, "C6A": 0.5, "C6AE": 0.3}

    def test_substitution_preserves_total(self):
        residency = {"C0": 0.3, "C1": 0.3, "C1E": 0.2, "C6": 0.2}
        out = AgileWattsPowerModel.substitute_states(residency)
        assert sum(out.values()) == pytest.approx(1.0)

    def test_aw_power_below_baseline(self):
        model = AgileWattsPowerModel()
        residency = {"C0": 0.2, "C1": 0.4, "C1E": 0.4}
        assert model.average_power(residency) < average_power(residency)

    def test_savings_fraction_for_idle_heavy_profile(self):
        model = AgileWattsPowerModel()
        residency = {"C0": 0.1, "C1": 0.45, "C1E": 0.45}
        savings = model.savings_fraction(residency)
        assert 0.3 <= savings <= 0.6

    def test_rescaling_charges_frequency_penalty(self):
        model = AgileWattsPowerModel(frequency_scalability=1.0)
        rescaled = model.rescale_residency({"C0": 0.5, "C1": 0.5})
        assert rescaled["C0"] > 0.5
        assert rescaled["C1"] < 0.5
        assert sum(rescaled.values()) == pytest.approx(1.0)

    def test_rescaling_charges_transition_overhead(self):
        model = AgileWattsPowerModel(frequency_scalability=0.0)
        rescaled = model.rescale_residency(
            {"C0": 0.5, "C1": 0.5},
            transitions_per_second={"C1": 100_000.0},  # 100k x 100 ns = 1%
        )
        assert rescaled["C0"] == pytest.approx(0.51)

    def test_rescaling_noop_for_pure_c0(self):
        model = AgileWattsPowerModel()
        assert model.rescale_residency({"C0": 1.0}) == {"C0": 1.0}

    def test_bad_scalability_rejected(self):
        with pytest.raises(ConfigurationError):
            AgileWattsPowerModel(frequency_scalability=1.5)

    @given(c1=st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=50)
    def test_savings_grow_with_c1_residency(self, c1):
        model = AgileWattsPowerModel(frequency_scalability=0.0)
        base = {"C0": 1.0 - c1, "C1": c1}
        more = {"C0": 1.0 - c1 - 0.05, "C1": c1 + 0.05}
        if sum(more.values()) <= 1.0 and more["C0"] >= 0:
            assert model.savings_fraction(more) >= model.savings_fraction(base) - 1e-9


class TestEq4TurboSavings:
    def test_matches_hand_computation(self):
        design = AgileWattsDesign()
        residency = {"C0": 0.2, "C1": 0.5, "C1E": 0.3}
        saved = 0.5 * (1.44 - design.c6a_power) + 0.3 * (0.88 - design.c6ae_power)
        expected = saved / 2.0
        assert turbo_mode_savings(residency, 2.0, design) == pytest.approx(expected)

    def test_zero_when_no_replaced_states(self):
        assert turbo_mode_savings({"C0": 1.0}, 4.0) == 0.0

    def test_non_positive_measured_rejected(self):
        with pytest.raises(ConfigurationError):
            turbo_mode_savings({"C1": 1.0}, 0.0)


class TestValidation:
    def test_accuracies_match_paper_band(self):
        results = {r.workload: r.accuracy_percent for r in validate_power_model()}
        assert results["SPECpower"] == pytest.approx(96.1, abs=0.3)
        assert results["Nginx"] == pytest.approx(95.2, abs=0.3)
        assert results["Spark"] == pytest.approx(94.4, abs=0.3)
        assert results["Hive"] == pytest.approx(94.9, abs=0.3)

    def test_all_above_94(self):
        for result in validate_power_model():
            assert result.accuracy_percent >= 94.0

    def test_points_have_positive_powers(self):
        for result in validate_power_model():
            for _, est, meas in result.points:
                assert est > 0 and meas > 0


class TestSnoopBounds:
    def test_no_snoop_savings_79pct(self):
        assert snoop_bounds().savings_no_snoops == pytest.approx(0.79, abs=0.01)

    def test_full_snoop_savings_68pct(self):
        assert snoop_bounds().savings_full_snoops == pytest.approx(0.685, abs=0.01)

    def test_loss_about_11pp(self):
        assert snoop_bounds().savings_loss == pytest.approx(0.11, abs=0.01)

    def test_zero_duty_equals_no_snoops(self):
        b = snoop_bounds(snoop_duty_cycle=0.0)
        assert b.savings_full_snoops == pytest.approx(b.savings_no_snoops)

    def test_loss_monotone_in_duty(self):
        losses = [
            snoop_bounds(snoop_duty_cycle=d).savings_loss
            for d in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert losses == sorted(losses)

    def test_bad_duty_rejected(self):
        with pytest.raises(ConfigurationError):
            snoop_bounds(snoop_duty_cycle=1.5)


class TestCostModel:
    def test_one_watt_year(self):
        # 1 W for a year at $0.125/kWh = 8.76 kWh x 0.125 = $1.095.
        model = CostModel()
        assert model.yearly_savings_per_server(1.0) == pytest.approx(1.095)

    def test_fleet_scaling(self):
        model = CostModel(servers=100_000, cores_per_server=20)
        # 0.5 W per core x 20 cores x 100K servers x $1.095/W-year.
        expected = 0.5 * 20 * 100_000 * 1.095
        assert model.yearly_savings_fleet(0.5) == pytest.approx(expected)

    def test_pue_multiplies(self):
        base = CostModel(pue=1.0).yearly_savings_per_server(1.0)
        assert CostModel(pue=1.5).yearly_savings_per_server(1.0) == pytest.approx(
            base * 1.5
        )

    def test_yearly_savings_musd_keys(self):
        out = yearly_savings_musd({"10K": 0.3, "500K": 0.2})
        assert set(out) == {"10K", "500K"}
        assert out["10K"] > out["500K"]

    def test_paper_band_implies_sub_watt_deltas(self):
        # Paper's $0.33-0.59M/yr per 100K servers corresponds to
        # ~0.14-0.25 W per core — confirm the inverse mapping.
        model = CostModel()
        low = model.yearly_savings_fleet(0.15) / 1e6
        high = model.yearly_savings_fleet(0.27) / 1e6
        assert low == pytest.approx(0.33, abs=0.05)
        assert high == pytest.approx(0.59, abs=0.06)

    def test_negative_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel().yearly_savings_per_server(-1.0)

    def test_bad_pue_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(pue=0.9)
