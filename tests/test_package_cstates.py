"""Tests for the package C-state opportunity model."""

import pytest

from repro.errors import ConfigurationError
from repro.uarch.package_cstates import (
    PackageCState,
    SimultaneousIdleModel,
    package_state_opportunity,
    skylake_package_cstates,
)
from repro.units import MS, US


class TestPackageCStateDefinitions:
    def test_two_states_defined(self):
        states = skylake_package_cstates()
        assert [s.name for s in states] == ["PC2", "PC6"]

    def test_deeper_is_cheaper_but_slower(self):
        pc2, pc6 = skylake_package_cstates()
        assert pc6.power_watts < pc2.power_watts
        assert pc6.target_residency > pc2.target_residency
        assert pc6.exit_latency > pc2.exit_latency

    def test_invalid_state_rejected(self):
        with pytest.raises(ConfigurationError):
            PackageCState("PCX", power_watts=-1.0, target_residency=0, exit_latency=0)


class TestSimultaneousIdleModel:
    def test_all_idle_fraction_is_p_to_the_n(self):
        model = SimultaneousIdleModel(
            cores=10, per_core_idle_fraction=0.8, mean_idle_interval=1 * MS
        )
        assert model.all_idle_fraction == pytest.approx(0.8 ** 10)

    def test_all_idle_interval_shrinks_with_cores(self):
        few = SimultaneousIdleModel(2, 0.8, 1 * MS)
        many = SimultaneousIdleModel(10, 0.8, 1 * MS)
        assert many.mean_all_idle_interval < few.mean_all_idle_interval

    def test_memcached_loads_cannot_use_package_states(self):
        # Mid load: 80% idle per core, ~100 us intervals, 10 cores.
        name, fraction = package_state_opportunity(
            per_core_idle_fraction=0.8, mean_idle_interval=100 * US, cores=10
        )
        assert name == "PC0"
        assert fraction == 0.0

    def test_client_style_idle_can_use_package_states(self):
        # Video-playback-like: 95% idle with ~100 ms quiet periods.
        name, fraction = package_state_opportunity(
            per_core_idle_fraction=0.95, mean_idle_interval=100 * MS, cores=4
        )
        assert name in ("PC2", "PC6")
        assert fraction > 0.5

    def test_usable_fraction_gated_by_target_residency(self):
        model = SimultaneousIdleModel(10, 0.9, 500 * US)
        pc2, pc6 = skylake_package_cstates()
        # 500 us / 10 cores = 50 us < PC2's 200 us target.
        assert model.usable_fraction(pc2) == 0.0
        assert model.usable_fraction(pc6) == 0.0

    def test_best_state_picks_deepest_usable(self):
        model = SimultaneousIdleModel(2, 0.95, 100 * MS)
        name, _ = model.best_state(skylake_package_cstates())
        assert name == "PC6"

    def test_invalid_model_rejected(self):
        with pytest.raises(ConfigurationError):
            SimultaneousIdleModel(0, 0.5, 1 * MS)
        with pytest.raises(ConfigurationError):
            SimultaneousIdleModel(10, 1.5, 1 * MS)
        with pytest.raises(ConfigurationError):
            SimultaneousIdleModel(10, 0.5, 0.0)


class TestPaperPositioning:
    def test_core_level_agility_is_the_binding_lever(self):
        # Across the whole Memcached sweep band, package states never
        # become usable — every watt must come from core C-states.
        for idle_frac, interval in [
            (0.95, 1 * MS),   # 10K QPS
            (0.85, 200 * US), # 100K
            (0.5, 20 * US),   # 500K
        ]:
            name, _ = package_state_opportunity(idle_frac, interval)
            assert name == "PC0"
