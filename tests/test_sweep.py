"""Tests for the scenario/sweep subsystem (repro.sweep)."""

import pytest

from repro.errors import ConfigurationError
from repro.sweep import (
    ProcessExecutor,
    ScenarioGrid,
    ScenarioSpec,
    SweepRunner,
    result_record,
)


def _spec(**overrides):
    base = dict(
        workload="memcached", config="baseline", qps=20_000,
        horizon=0.02, seed=7,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestScenarioSpec:
    def test_round_trip(self):
        spec = _spec(governor="menu", turbo=False, snoops=False)
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.cache_key == spec.cache_key

    def test_cache_key_canonicalises_numeric_types(self):
        a = _spec(qps=100_000, cores=10, horizon=1, seed=42)
        b = _spec(qps=100_000.0, cores=10.0, horizon=1.0, seed=42.0)
        assert a.cache_key == b.cache_key
        assert a == b

    def test_cache_key_distinguishes_every_axis(self):
        base = _spec()
        variants = [
            _spec(workload="kafka"),
            _spec(config="AW"),
            _spec(qps=30_000),
            _spec(cores=4),
            _spec(horizon=0.05),
            _spec(seed=8),
            _spec(turbo=False),
            _spec(snoops=False),
        ]
        keys = {v.cache_key for v in variants}
        assert len(keys) == len(variants)
        assert base.cache_key not in keys

    def test_from_dict_rejects_unknown_fields(self):
        data = _spec().to_dict()
        data["typo"] = 1
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(data)

    def test_from_dict_rejects_missing_fields(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict({"workload": "memcached"})

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(workload="postgres")

    def test_unknown_governor_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(governor="psychic")

    @pytest.mark.parametrize("field,value", [
        ("qps", 0), ("qps", -1), ("cores", 0), ("horizon", 0.0),
    ])
    def test_invalid_numbers_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            _spec(**{field: value})

    def test_turbo_override_applies(self):
        on = _spec(config="NT_Baseline", turbo=True).build_configuration()
        off = _spec(config="baseline", turbo=False).build_configuration()
        default = _spec(config="baseline").build_configuration()
        assert on.turbo_enabled
        assert not off.turbo_enabled
        assert default.turbo_enabled

    def test_with_returns_modified_copy(self):
        spec = _spec()
        other = spec.with_(seed=99)
        assert other.seed == 99
        assert spec.seed == 7

    def test_execute_matches_legacy_simulate(self):
        from repro.server import named_configuration, simulate
        from repro.workloads import memcached_workload

        spec = _spec()
        via_spec = spec.execute()
        legacy = simulate(
            memcached_workload(), named_configuration("baseline"),
            qps=spec.qps, cores=spec.cores, horizon=spec.horizon, seed=spec.seed,
        )
        assert via_spec.avg_core_power == legacy.avg_core_power
        assert via_spec.completed == legacy.completed
        assert via_spec.residency == legacy.residency


class TestScenarioGrid:
    def test_product_order_and_length(self):
        grid = ScenarioGrid.product(
            workloads=["memcached", "kafka"],
            configs=["baseline", "AW"],
            qps=[1_000, 2_000],
            seeds=[1],
        )
        assert len(grid) == 8
        # workload outermost, qps innermost of the varied axes
        assert [s.workload for s in grid][:4] == ["memcached"] * 4
        assert [s.qps for s in grid][:4] == [1_000, 2_000, 1_000, 2_000]

    def test_product_requires_qps(self):
        with pytest.raises(ConfigurationError):
            ScenarioGrid.product(configs=["baseline"])

    def test_dict_round_trip(self):
        grid = ScenarioGrid.product(qps=[1_000, 2_000], seeds=[1, 2])
        rebuilt = ScenarioGrid.from_dicts(grid.to_dicts())
        assert list(rebuilt) == list(grid)

    def test_concatenation(self):
        a = ScenarioGrid.product(qps=[1_000])
        b = ScenarioGrid.product(qps=[2_000])
        assert [s.qps for s in a + b] == [1_000.0, 2_000.0]


class TestSweepRunner:
    def test_serial_vs_parallel_parity(self):
        grid = ScenarioGrid.product(
            configs=["baseline", "AW"], qps=[10_000, 40_000],
            horizons=[0.02], seeds=[7],
        )
        serial = SweepRunner(cache={}).run_grid(grid)
        parallel = SweepRunner(executor="process", jobs=2, cache={}).run_grid(grid)
        for s, p in zip(serial, parallel):
            assert s.avg_core_power == p.avg_core_power
            assert s.completed == p.completed
            assert s.residency == p.residency
            assert s.server_latency.p99 == p.server_latency.p99

    def test_memoisation_shares_points_across_calls(self):
        simulated = []
        runner = SweepRunner(cache={}, progress=lambda d, t, s: simulated.append(s))
        spec = _spec()
        first = runner.run(spec)
        second = runner.run(spec)
        assert first is second
        assert len(simulated) == 1

    def test_duplicates_simulated_once(self):
        simulated = []
        runner = SweepRunner(cache={}, progress=lambda d, t, s: simulated.append(s))
        spec = _spec()
        results = runner.run_many([spec, spec, spec])
        assert len(results) == 3
        assert len(simulated) == 1
        assert results[0] is results[1] is results[2]

    def test_progress_hook_counts(self):
        events = []
        runner = SweepRunner(cache={}, progress=lambda d, t, s: events.append((d, t)))
        runner.run_many([_spec(seed=1), _spec(seed=2)])
        assert events == [(1, 2), (2, 2)]

    def test_log_hook_reports_cache_state(self):
        messages = []
        runner = SweepRunner(cache={}, log=messages.append)
        runner.run(_spec())
        runner.run(_spec())
        assert "1 to simulate" in messages[0]
        assert "0 to simulate" in messages[1]

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(executor="gpu")

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessExecutor(jobs=0)

    def test_empty_sweep(self):
        assert SweepRunner(cache={}).run_many([]) == []

    def test_worker_errors_propagate(self):
        # Corrupt a spec dict so the worker-side rebuild fails.
        import repro.sweep.runner as runner_mod

        with pytest.raises(ConfigurationError):
            runner_mod._execute_spec_dict({"workload": "memcached"})

    def test_result_record_is_json_safe(self):
        import json

        spec = _spec()
        record = result_record(spec, SweepRunner().run(spec))
        text = json.dumps(record)
        assert "avg_core_power" in text
        assert record["workload"] == "memcached"
        assert record["completed"] > 0


class TestCommonShims:
    def test_run_point_equals_spec_execution(self):
        from repro.experiments.common import clear_cache, run_point

        clear_cache()
        via_shim = run_point("memcached", "baseline", 20_000, horizon=0.02, seed=7)
        direct = _spec().execute()
        assert via_shim.avg_core_power == direct.avg_core_power
        assert via_shim.completed == direct.completed

    def test_run_sweep_order(self):
        from repro.experiments.common import run_sweep

        results = run_sweep(
            "memcached", "baseline", [10_000, 20_000], horizon=0.02, seed=7
        )
        assert [r.qps for r in results] == [10_000, 20_000]

    def test_prefetch_warms_the_default_cache(self):
        from repro.experiments.common import clear_cache, prefetch_points, run_point
        from repro.sweep import shared_cache_size

        clear_cache()
        prefetch_points([("memcached", "baseline", 20_000)], horizon=0.02, seed=7)
        warmed = shared_cache_size()
        run_point("memcached", "baseline", 20_000, horizon=0.02, seed=7)
        assert shared_cache_size() == warmed
