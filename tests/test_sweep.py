"""Tests for the scenario/sweep subsystem (repro.sweep)."""

import multiprocessing

import pytest

from repro.errors import ConfigurationError
from repro.sweep import (
    FailurePolicy,
    PointFailure,
    ProcessExecutor,
    ScenarioGrid,
    ScenarioSpec,
    SweepRunner,
    result_record,
)

#: Dynamically-registered factories reach pool workers only when workers
#: inherit parent memory (fork); skip those tests elsewhere.
#: (The shared `failing_workload` fixture lives in tests/conftest.py.)
fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="needs fork start method (workers must inherit test registrations)",
)


def _spec(**overrides):
    base = dict(
        workload="memcached", config="baseline", qps=20_000,
        horizon=0.02, seed=7,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestScenarioSpec:
    def test_round_trip(self):
        spec = _spec(governor="menu", turbo=False, snoops=False)
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.cache_key == spec.cache_key

    def test_cache_key_canonicalises_numeric_types(self):
        a = _spec(qps=100_000, cores=10, horizon=1, seed=42)
        b = _spec(qps=100_000.0, cores=10.0, horizon=1.0, seed=42.0)
        assert a.cache_key == b.cache_key
        assert a == b

    def test_cache_key_distinguishes_every_axis(self):
        base = _spec()
        variants = [
            _spec(workload="kafka"),
            _spec(config="AW"),
            _spec(qps=30_000),
            _spec(cores=4),
            _spec(horizon=0.05),
            _spec(seed=8),
            _spec(turbo=False),
            _spec(snoops=False),
        ]
        keys = {v.cache_key for v in variants}
        assert len(keys) == len(variants)
        assert base.cache_key not in keys

    def test_from_dict_rejects_unknown_fields(self):
        data = _spec().to_dict()
        data["typo"] = 1
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(data)

    def test_from_dict_rejects_missing_fields(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict({"workload": "memcached"})

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(workload="postgres")

    def test_unknown_governor_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(governor="psychic")

    @pytest.mark.parametrize("field,value", [
        ("qps", 0), ("qps", -1), ("cores", 0), ("horizon", 0.0),
    ])
    def test_invalid_numbers_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            _spec(**{field: value})

    def test_turbo_override_applies(self):
        on = _spec(config="NT_Baseline", turbo=True).build_configuration()
        off = _spec(config="baseline", turbo=False).build_configuration()
        default = _spec(config="baseline").build_configuration()
        assert on.turbo_enabled
        assert not off.turbo_enabled
        assert default.turbo_enabled

    def test_with_returns_modified_copy(self):
        spec = _spec()
        other = spec.with_(seed=99)
        assert other.seed == 99
        assert spec.seed == 7

    def test_execute_matches_legacy_simulate(self):
        from repro.server import named_configuration, simulate
        from repro.workloads import memcached_workload

        spec = _spec()
        via_spec = spec.execute()
        legacy = simulate(
            memcached_workload(), named_configuration("baseline"),
            qps=spec.qps, cores=spec.cores, horizon=spec.horizon, seed=spec.seed,
        )
        assert via_spec.avg_core_power == legacy.avg_core_power
        assert via_spec.completed == legacy.completed
        assert via_spec.residency == legacy.residency


class TestScenarioGrid:
    def test_product_order_and_length(self):
        grid = ScenarioGrid.product(
            workloads=["memcached", "kafka"],
            configs=["baseline", "AW"],
            qps=[1_000, 2_000],
            seeds=[1],
        )
        assert len(grid) == 8
        # workload outermost, qps innermost of the varied axes
        assert [s.workload for s in grid][:4] == ["memcached"] * 4
        assert [s.qps for s in grid][:4] == [1_000, 2_000, 1_000, 2_000]

    def test_product_requires_qps(self):
        with pytest.raises(ConfigurationError):
            ScenarioGrid.product(configs=["baseline"])

    def test_dict_round_trip(self):
        grid = ScenarioGrid.product(qps=[1_000, 2_000], seeds=[1, 2])
        rebuilt = ScenarioGrid.from_dicts(grid.to_dicts())
        assert list(rebuilt) == list(grid)

    def test_concatenation(self):
        a = ScenarioGrid.product(qps=[1_000])
        b = ScenarioGrid.product(qps=[2_000])
        assert [s.qps for s in a + b] == [1_000.0, 2_000.0]


class TestSweepRunner:
    def test_serial_vs_parallel_parity(self):
        grid = ScenarioGrid.product(
            configs=["baseline", "AW"], qps=[10_000, 40_000],
            horizons=[0.02], seeds=[7],
        )
        serial = SweepRunner(cache={}).run_grid(grid)
        parallel = SweepRunner(executor="process", jobs=2, cache={}).run_grid(grid)
        for s, p in zip(serial, parallel):
            assert s.avg_core_power == p.avg_core_power
            assert s.completed == p.completed
            assert s.residency == p.residency
            assert s.server_latency.p99 == p.server_latency.p99

    def test_memoisation_shares_points_across_calls(self):
        simulated = []
        runner = SweepRunner(cache={}, progress=lambda d, t, s: simulated.append(s))
        spec = _spec()
        first = runner.run(spec)
        second = runner.run(spec)
        assert first is second
        assert len(simulated) == 1

    def test_duplicates_simulated_once(self):
        simulated = []
        runner = SweepRunner(cache={}, progress=lambda d, t, s: simulated.append(s))
        spec = _spec()
        results = runner.run_many([spec, spec, spec])
        assert len(results) == 3
        assert len(simulated) == 1
        assert results[0] is results[1] is results[2]

    def test_progress_hook_counts(self):
        events = []
        runner = SweepRunner(cache={}, progress=lambda d, t, s: events.append((d, t)))
        runner.run_many([_spec(seed=1), _spec(seed=2)])
        assert events == [(1, 2), (2, 2)]

    def test_log_hook_reports_cache_state(self):
        messages = []
        runner = SweepRunner(cache={}, log=messages.append)
        runner.run(_spec())
        runner.run(_spec())
        assert "1 to simulate" in messages[0]
        assert "0 to simulate" in messages[1]
        assert "1 memoised" in messages[1]

    def test_log_hook_counts_duplicates_separately(self):
        # Duplicate uncached specs must not be reported as cache hits.
        messages = []
        runner = SweepRunner(cache={}, log=messages.append)
        a, b = _spec(seed=1), _spec(seed=2)
        runner.run_many([a, a, a, b])
        assert "4 points" in messages[0]
        assert "2 to simulate" in messages[0]
        assert "0 memoised" in messages[0]
        assert "2 duplicate" in messages[0]
        runner.run_many([a, a, b])
        assert "0 to simulate" in messages[1]
        assert "2 memoised" in messages[1]
        assert "1 duplicate" in messages[1]

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(executor="gpu")

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessExecutor(jobs=0)

    def test_empty_sweep(self):
        assert SweepRunner(cache={}).run_many([]) == []

    def test_worker_errors_propagate(self):
        # Corrupt a spec dict so the worker-side rebuild fails.
        import repro.sweep.runner as runner_mod

        with pytest.raises(ConfigurationError):
            runner_mod._execute_spec_dict({"workload": "memcached"})

    def test_result_record_is_json_safe(self):
        import json

        spec = _spec()
        record = result_record(spec, SweepRunner().run(spec))
        text = json.dumps(record)
        assert "avg_core_power" in text
        assert record["workload"] == "memcached"
        assert record["completed"] > 0


class TestFailurePolicy:
    def test_invalid_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            FailurePolicy(mode="explode")
        with pytest.raises(ConfigurationError):
            FailurePolicy(timeout=0)
        with pytest.raises(ConfigurationError):
            FailurePolicy(retries=-1)

    def test_serial_raise_is_default(self, failing_workload):
        runner = SweepRunner(cache={})
        with pytest.raises(RuntimeError, match="kaboom"):
            runner.run(_spec(workload=failing_workload))

    def test_serial_raise_keeps_completed_results(self, failing_workload):
        good, bad = _spec(), _spec(workload=failing_workload)
        runner = SweepRunner(cache={})
        with pytest.raises(RuntimeError):
            runner.run_many([good, bad])
        # the point that finished before the failure is cached
        assert good.cache_key in runner.cache

    def test_serial_skip_drops_failed_point(self, failing_workload):
        good, bad = _spec(), _spec(workload=failing_workload)
        runner = SweepRunner(cache={}, policy=FailurePolicy(mode="skip"))
        results = runner.run_many([good, bad, good])
        assert results[0].completed > 0
        assert results[1] is None
        assert results[2] is results[0]
        assert bad.cache_key in runner.last_failures
        assert "kaboom" in runner.last_failures[bad.cache_key].error

    def test_serial_record_returns_point_failure(self, failing_workload):
        bad = _spec(workload=failing_workload)
        runner = SweepRunner(
            cache={}, policy=FailurePolicy(mode="record", retries=2)
        )
        results = runner.run_many([bad])
        assert isinstance(results[0], PointFailure)
        assert results[0].attempts == 3  # 1 try + 2 retries
        assert "kaboom" in results[0].error

    def test_failures_are_not_cached(self, failing_workload):
        bad = _spec(workload=failing_workload)
        runner = SweepRunner(cache={}, policy=FailurePolicy(mode="skip"))
        runner.run_many([bad])
        assert bad.cache_key not in runner.cache

    def test_progress_counts_failures(self, failing_workload):
        events = []
        runner = SweepRunner(
            cache={},
            policy=FailurePolicy(mode="skip"),
            progress=lambda d, t, s: events.append((d, t)),
        )
        runner.run_many([_spec(seed=1), _spec(workload=failing_workload)])
        assert events == [(1, 2), (2, 2)]

    @fork_only
    def test_process_skip_completes_remaining_points(self, failing_workload):
        good_a, bad, good_b = _spec(seed=1), _spec(workload=failing_workload), _spec(seed=2)
        runner = SweepRunner(
            executor="process", jobs=2, cache={},
            policy=FailurePolicy(mode="skip"),
        )
        results = runner.run_many([good_a, bad, good_b])
        assert results[0].completed > 0
        assert results[1] is None
        assert results[2].completed > 0
        assert len(runner.last_failures) == 1

    @fork_only
    def test_process_record_with_retries(self, failing_workload):
        bad = _spec(workload=failing_workload)
        runner = SweepRunner(
            executor="process", jobs=2, cache={},
            policy=FailurePolicy(mode="record", retries=1),
        )
        results = runner.run_many([bad, _spec(seed=3)])
        assert isinstance(results[0], PointFailure)
        assert results[0].attempts == 2
        assert results[1].completed > 0

    @fork_only
    def test_process_raise_delivers_completed_results(self, failing_workload):
        # One worker processes sequentially, so the good point completes
        # (and must be cached) before the bad one aborts the sweep.
        good, bad = _spec(seed=4), _spec(workload=failing_workload)
        runner = SweepRunner(executor="process", jobs=1, cache={})
        with pytest.raises(RuntimeError, match="kaboom"):
            runner.run_many([good, bad])
        assert good.cache_key in runner.cache

    @fork_only
    def test_process_timeout_is_a_failure(self):
        from repro.sweep.spec import WORKLOAD_FACTORIES, register_workload
        from repro.workloads import memcached_workload

        def sleepy():
            import time

            time.sleep(1.5)
            return memcached_workload()

        register_workload("sleepy", sleepy)
        try:
            runner = SweepRunner(
                executor="process", jobs=2, cache={},
                policy=FailurePolicy(mode="record", timeout=0.2),
            )
            results = runner.run_many([_spec(workload="sleepy"), _spec(seed=5)])
            assert isinstance(results[0], PointFailure)
            assert "TimeoutError" in results[0].error
            assert results[1].completed > 0
        finally:
            del WORKLOAD_FACTORIES["sleepy"]

    @fork_only
    def test_timeout_budget_excludes_queue_wait(self):
        # jobs=1, a ~3s hog with a 0.5s budget, then a fast point: the
        # hog must time out but the fast point — which waits for the
        # occupied worker before it is ever submitted — must succeed.
        # Its budget may not tick while the hog holds the only worker.
        from repro.sweep.spec import WORKLOAD_FACTORIES, register_workload
        from repro.workloads import memcached_workload

        def hog():
            import time

            time.sleep(3.0)
            return memcached_workload()

        register_workload("hog", hog)
        try:
            runner = SweepRunner(
                executor="process", jobs=1, cache={},
                policy=FailurePolicy(mode="record", timeout=0.5),
            )
            results = runner.run_many(
                [_spec(workload="hog"), _spec(seed=6)]
            )
            assert isinstance(results[0], PointFailure)
            assert "TimeoutError" in results[0].error
            assert not isinstance(results[1], PointFailure)
            assert results[1].completed > 0
        finally:
            del WORKLOAD_FACTORIES["hog"]

    def test_timeout_error_is_a_repro_error(self):
        # cmd_sweep catches ReproError in raise mode; a timeout abort must
        # surface as a clean CLI error, not a raw TimeoutError traceback.
        from repro.errors import PointTimeoutError, ReproError

        assert issubclass(PointTimeoutError, ReproError)
        assert "TimeoutError" in PointTimeoutError.__name__

    @fork_only
    def test_single_spec_with_timeout_uses_the_pool(self):
        # The 1-point inline fast path cannot enforce a timeout, so it
        # must be bypassed when one is set.
        from repro.sweep.spec import WORKLOAD_FACTORIES, register_workload
        from repro.workloads import memcached_workload

        def sleepy():
            import time

            time.sleep(1.5)
            return memcached_workload()

        register_workload("sleepy1", sleepy)
        try:
            runner = SweepRunner(
                executor="process", jobs=2, cache={},
                policy=FailurePolicy(mode="record", timeout=0.2),
            )
            results = runner.run_many([_spec(workload="sleepy1")])
            assert isinstance(results[0], PointFailure)
            assert "TimeoutError" in results[0].error
        finally:
            del WORKLOAD_FACTORIES["sleepy1"]

    def test_executor_string_with_policy(self):
        runner = SweepRunner(executor="process", jobs=2, policy=FailurePolicy(mode="skip"))
        assert runner.executor.policy.mode == "skip"
        runner = SweepRunner(policy=FailurePolicy(retries=3))
        assert runner.executor.policy.retries == 3


class TestExecutorHygiene:
    def test_jobs_exceeding_points_is_clamped_and_logged(self):
        messages = []
        runner = SweepRunner(
            executor="process", jobs=8, cache={}, log=messages.append
        )
        results = runner.run_many([_spec(seed=11), _spec(seed=12)])
        assert all(r.completed > 0 for r in results)
        assert any("clamped" in m for m in messages)

    def test_exact_jobs_not_logged_as_clamped(self):
        messages = []
        runner = SweepRunner(
            executor="process", jobs=2, cache={}, log=messages.append
        )
        runner.run_many([_spec(seed=13), _spec(seed=14)])
        assert not any("clamped" in m for m in messages)

    @fork_only
    def test_abandoned_timeout_worker_logs_the_cache_key(self):
        # A timed-out point's worker cannot be killed portably; the log
        # must name the spec's cache key so the abandoned point is
        # identifiable (e.g. against the result store) afterwards.
        from repro.sweep.spec import WORKLOAD_FACTORIES, register_workload
        from repro.workloads import memcached_workload

        def sleepy():
            import time

            time.sleep(1.2)
            return memcached_workload()

        register_workload("sleepy_logged", sleepy)
        messages = []
        try:
            runner = SweepRunner(
                executor="process", jobs=2, cache={}, log=messages.append,
                policy=FailurePolicy(mode="record", timeout=0.2),
            )
            results = runner.run_many(
                [_spec(workload="sleepy_logged"), _spec(seed=15)]
            )
            assert isinstance(results[0], PointFailure)
            assert any(
                "abandoned" in m and "sleepy_logged" in m for m in messages
            )
        finally:
            del WORKLOAD_FACTORIES["sleepy_logged"]


class TestKillablePool:
    """Big points run on dedicated terminate()-able processes, so a
    FailurePolicy timeout bounds worker CPU — not just caller latency."""

    def test_invalid_kill_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessExecutor(jobs=2, kill_threshold=0)
        with pytest.raises(ConfigurationError):
            ProcessExecutor(jobs=2, kill_threshold=-1.0)

    def test_default_threshold_targets_million_request_points(self):
        from repro.sweep.runner import KILL_THRESHOLD_REQUESTS, _point_size

        small = _spec()  # 20 kqps * 0.02 s = 400 simulated requests
        assert _point_size(small) < KILL_THRESHOLD_REQUESTS
        big = _spec(qps=25_000_000, horizon=0.4)
        assert _point_size(big) >= KILL_THRESHOLD_REQUESTS

    @fork_only
    def test_timed_out_big_point_is_killed_and_logged(self):
        # A hog above the (test-lowered) threshold with a tight budget:
        # the sweep must settle quickly — the worker is terminated, not
        # abandoned to finish its sleep — and the kill must be logged
        # with the spec's cache key.
        from time import monotonic

        from repro.sweep.spec import WORKLOAD_FACTORIES, register_workload
        from repro.workloads import memcached_workload

        def big_hog():
            import time

            time.sleep(30.0)
            return memcached_workload()

        register_workload("big_hog", big_hog)
        messages = []
        try:
            executor = ProcessExecutor(
                jobs=2,
                policy=FailurePolicy(mode="record", timeout=0.3),
                kill_threshold=1.0,
            )
            runner = SweepRunner(
                executor=executor, cache={}, log=messages.append
            )
            start = monotonic()
            results = runner.run_many(
                [_spec(workload="big_hog"), _spec(seed=25)]
            )
            elapsed = monotonic() - start
            assert isinstance(results[0], PointFailure)
            assert "worker killed" in results[0].error
            assert results[1].completed > 0
            # Well under the hog's 30 s sleep: the kill actually landed.
            assert elapsed < 10.0
            spec_key = str(_spec(workload="big_hog").cache_key)
            assert any(
                "killed timed-out worker" in m and spec_key in m
                for m in messages
            )
        finally:
            del WORKLOAD_FACTORIES["big_hog"]

    def test_killable_point_success_path_matches_serial(self):
        # With a generous budget the dedicated process finishes and its
        # result is harvested like any pool result.
        spec = _spec(seed=26)
        executor = ProcessExecutor(
            jobs=2,
            policy=FailurePolicy(mode="record", timeout=60.0),
            kill_threshold=1.0,  # every point goes the killable route
        )
        results = SweepRunner(executor=executor, cache={}).run_many(
            [spec, _spec(seed=27)]
        )
        serial = SweepRunner(cache={}).run(spec)
        assert results[0].completed == serial.completed
        assert results[0].avg_core_power == serial.avg_core_power
        assert results[0].package_power == serial.package_power

    @fork_only
    def test_kill_threshold_none_falls_back_to_abandonment(self):
        from repro.sweep.spec import WORKLOAD_FACTORIES, register_workload
        from repro.workloads import memcached_workload

        def sleepy_unkillable():
            import time

            time.sleep(1.2)
            return memcached_workload()

        register_workload("sleepy_unkillable", sleepy_unkillable)
        messages = []
        try:
            executor = ProcessExecutor(
                jobs=2,
                policy=FailurePolicy(mode="record", timeout=0.2),
                kill_threshold=None,
            )
            runner = SweepRunner(
                executor=executor, cache={}, log=messages.append
            )
            results = runner.run_many([_spec(workload="sleepy_unkillable")])
            assert isinstance(results[0], PointFailure)
            assert any("abandoned" in m for m in messages)
            assert not any("killed" in m for m in messages)
        finally:
            del WORKLOAD_FACTORIES["sleepy_unkillable"]

    @fork_only
    def test_worker_crash_on_killable_path_is_a_point_failure(self, failing_workload):
        executor = ProcessExecutor(
            jobs=2,
            policy=FailurePolicy(mode="record", timeout=60.0),
            kill_threshold=1.0,
        )
        results = SweepRunner(executor=executor, cache={}).run_many(
            [_spec(workload=failing_workload), _spec(seed=28)]
        )
        assert isinstance(results[0], PointFailure)
        assert "kaboom" in results[0].error
        assert results[1].completed > 0


class TestWorkerRegistryCheck:
    def test_dynamic_names_detected(self, failing_workload):
        from repro.sweep.runner import _check_worker_registries, find_unregistered

        specs = [_spec(workload=failing_workload), _spec()]
        workloads, governors = find_unregistered(specs)
        assert workloads == [failing_workload]
        assert governors == []
        with pytest.raises(ConfigurationError, match="import time"):
            _check_worker_registries(specs, start_method="spawn")
        # fork workers inherit the registration: no error
        _check_worker_registries(specs, start_method="fork")

    def test_dynamic_governor_detected(self):
        from repro.governor.idle import MenuGovernor
        from repro.sweep.runner import _check_worker_registries
        from repro.sweep.spec import GOVERNOR_FACTORIES, register_governor

        register_governor("temp_gov", MenuGovernor)
        try:
            spec = _spec(governor="temp_gov")
            with pytest.raises(ConfigurationError, match="temp_gov"):
                _check_worker_registries([spec], start_method="spawn")
        finally:
            del GOVERNOR_FACTORIES["temp_gov"]

    def test_dynamic_balancer_detected(self):
        from repro.cluster.balancer import (
            BALANCER_FACTORIES,
            RandomBalancer,
            register_balancer,
        )
        from repro.sweep.runner import _check_worker_registries

        register_balancer("temp_bal", RandomBalancer)
        try:
            spec = _spec(nodes=2, balancer="temp_bal")
            with pytest.raises(ConfigurationError, match="temp_bal"):
                _check_worker_registries([spec], start_method="spawn")
            # Single-node specs canonicalise the balancer to the
            # built-in default, so the name never reaches a worker.
            single = _spec(balancer="temp_bal")
            assert single.balancer == "random"
            _check_worker_registries([single], start_method="spawn")
        finally:
            del BALANCER_FACTORIES["temp_bal"]

    def test_import_time_names_pass_everywhere(self):
        from repro.sweep.runner import _check_worker_registries

        specs = [_spec(), _spec(governor="oracle"), _spec(governor="c1_only")]
        _check_worker_registries(specs, start_method="spawn")
        _check_worker_registries(specs, start_method="fork")

    def test_overridden_builtin_detected(self):
        # Re-registering a built-in name must be caught too: spawn workers
        # would silently fall back to the import-time factory.
        from repro.sweep.runner import _check_worker_registries, find_unregistered
        from repro.sweep.spec import WORKLOAD_FACTORIES, register_workload
        from repro.workloads import memcached_workload

        original = WORKLOAD_FACTORIES["memcached"]
        register_workload("memcached", lambda: memcached_workload())
        try:
            workloads, _ = find_unregistered([_spec()])
            assert workloads == ["memcached"]
            with pytest.raises(ConfigurationError, match="overridden"):
                _check_worker_registries([_spec()], start_method="spawn")
        finally:
            WORKLOAD_FACTORIES["memcached"] = original
        assert find_unregistered([_spec()]) == ([], [])


class TestOracleGovernor:
    def test_oracle_registered_at_import_time(self):
        from repro.sweep.spec import GOVERNOR_FACTORIES, IMPORT_TIME_GOVERNORS

        assert "oracle" in GOVERNOR_FACTORIES
        assert "oracle" in IMPORT_TIME_GOVERNORS

    def test_oracle_spec_executes(self):
        result = SweepRunner(cache={}).run(_spec(governor="oracle"))
        assert result.completed > 0

    def test_governor_axis_changes_results(self):
        menu = SweepRunner(cache={}).run(_spec(config="NT_Baseline"))
        c1 = SweepRunner(cache={}).run(_spec(config="NT_Baseline", governor="c1_only"))
        assert c1.avg_core_power != menu.avg_core_power


class TestProgressRenderer:
    class _TtyBuffer:
        def __init__(self):
            self.chunks = []

        def write(self, text):
            self.chunks.append(text)

        def flush(self):
            pass

        def isatty(self):
            return True

    def test_tty_meter_blots_out_longer_previous_line(self):
        from repro.sweep import ProgressRenderer

        stream = self._TtyBuffer()
        renderer = ProgressRenderer(label="sweep", stream=stream)
        # Neutralise the rate/ETA tail: this test is about the padding
        # of the bar+description part, and the tail's length varies with
        # wall-clock timing.
        renderer._suffix = lambda done, total, now: ""
        long_spec = ScenarioSpec(
            workload="memcached", config="NT_Baseline", qps=1_000_000,
            horizon=0.02, seed=7,
        )
        short_spec = _spec()
        renderer(1, 3, long_spec)
        first = stream.chunks[-1]
        renderer(2, 3, short_spec)
        second = stream.chunks[-1]
        # the shorter line is space-padded to fully cover the longer one
        assert len(second) == len(first)
        assert second.endswith("  ")
        assert second.startswith("\r")
        # final tick terminates the line
        renderer(3, 3, short_spec)
        assert stream.chunks[-1] == "\n"

    def test_non_tty_prints_plain_lines(self):
        import io

        from repro.sweep import ProgressRenderer

        stream = io.StringIO()
        renderer = ProgressRenderer(label="run", stream=stream)
        renderer(1, 2, _spec())
        renderer(2, 2, _spec())
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0] == "run: [1/2] memcached/baseline @ 20K QPS"
        # The second line may carry a rate tail (wall-clock dependent).
        assert lines[1].startswith("run: [2/2] memcached/baseline @ 20K QPS")

    def test_rate_eta_and_hits_in_meter(self):
        import io

        from repro.sweep import ProgressRenderer

        stream = io.StringIO()
        renderer = ProgressRenderer(label="run", stream=stream)
        renderer.note_hits(3, 1)
        renderer._t0 = -10.0  # pretend the first point settled 10s ago
        renderer(1, 5, _spec())
        renderer(2, 5, _spec())
        line = stream.getvalue().splitlines()[-1]
        assert "pts/s" in line
        assert "ETA" in line
        assert "3 memo" in line and "1 store" in line


class TestCommonShims:
    def test_run_point_equals_spec_execution(self):
        from repro.experiments.common import clear_cache, run_point

        clear_cache()
        via_shim = run_point("memcached", "baseline", 20_000, horizon=0.02, seed=7)
        direct = _spec().execute()
        assert via_shim.avg_core_power == direct.avg_core_power
        assert via_shim.completed == direct.completed

    def test_run_sweep_order(self):
        from repro.experiments.common import run_sweep

        results = run_sweep(
            "memcached", "baseline", [10_000, 20_000], horizon=0.02, seed=7
        )
        assert [r.qps for r in results] == [10_000, 20_000]

    def test_prefetch_warms_the_default_cache(self):
        from repro.experiments.common import clear_cache, prefetch_points, run_point
        from repro.sweep import shared_cache_size

        clear_cache()
        prefetch_points([("memcached", "baseline", 20_000)], horizon=0.02, seed=7)
        warmed = shared_cache_size()
        run_point("memcached", "baseline", 20_000, horizon=0.02, seed=7)
        assert shared_cache_size() == warmed
