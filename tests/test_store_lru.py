"""Tests for result-store LRU eviction and last-access tracking."""

import sqlite3

from repro.store import ResultStore
from repro.sweep import ScenarioSpec, SweepRunner


def _spec(seed=7, **overrides):
    # A rate/horizon big enough that each record's latency-sample blob
    # (~2000 samples) dwarfs sqlite page granularity, so fractional size
    # caps in the eviction tests are meaningfully reachable.
    base = dict(
        workload="memcached", config="baseline", qps=100_000,
        horizon=0.02, seed=seed,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _result(spec):
    return SweepRunner(cache={}).run(spec)


def _last_access(store, key):
    with sqlite3.connect(str(store.path)) as conn:
        row = conn.execute(
            "SELECT last_access FROM results WHERE digest = ?",
            (store._digest(key),),
        ).fetchone()
    return row[0] if row else None


class TestLastAccess:
    def test_put_stamps_last_access(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        store.put(spec.cache_key, _result(spec), spec=spec)
        assert _last_access(store, spec.cache_key) is not None

    def test_get_refreshes_last_access(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _spec()
        store.put(spec.cache_key, _result(spec), spec=spec)
        # Backdate, then hit: the hit must move last_access forward.
        with sqlite3.connect(str(store.path)) as conn:
            conn.execute("UPDATE results SET last_access = 1.0")
        assert store.get(spec.cache_key) is not None
        assert _last_access(store, spec.cache_key) > 1.0

    def test_get_many_refreshes_last_access(self, tmp_path):
        store = ResultStore(tmp_path)
        a, b = _spec(seed=1), _spec(seed=2)
        result = _result(a)
        store.put_many([(a.cache_key, result, a), (b.cache_key, result, b)])
        with sqlite3.connect(str(store.path)) as conn:
            conn.execute("UPDATE results SET last_access = 1.0")
        found = store.get_many([a.cache_key, b.cache_key])
        assert set(found) == {a.cache_key, b.cache_key}
        assert _last_access(store, a.cache_key) > 1.0
        assert _last_access(store, b.cache_key) > 1.0


class TestPruneLru:
    def _filled_store(self, tmp_path, n=6):
        store = ResultStore(tmp_path)
        specs = [_spec(seed=i) for i in range(n)]
        result = _result(specs[0])
        store.put_many([(s.cache_key, result, s) for s in specs])
        return store, specs

    def test_prunes_least_recently_accessed_first(self, tmp_path):
        store, specs = self._filled_store(tmp_path)
        # Explicit access ordering: seed i was last touched at time i+1,
        # so eviction order is specs[0], specs[1], ...
        with sqlite3.connect(str(store.path)) as conn:
            for i, spec in enumerate(specs):
                conn.execute(
                    "UPDATE results SET last_access = ? WHERE digest = ?",
                    (float(i + 1), store._digest(spec.cache_key)),
                )
        before = store.db_bytes()
        evicted = store.prune_lru(before // 2)
        assert 0 < evicted < len(specs)
        assert store.db_bytes() <= before // 2
        # The most recently accessed records survive.
        survivors = [s for s in specs if s.cache_key in store]
        assert survivors == specs[evicted:]

    def test_prune_to_zero_empties_the_store(self, tmp_path):
        store, specs = self._filled_store(tmp_path)
        evicted = store.prune_lru(0)
        assert evicted == len(specs)
        assert len(store) == 0

    def test_prune_noop_when_under_cap(self, tmp_path):
        store, specs = self._filled_store(tmp_path)
        assert store.prune_lru(store.size_bytes() + 1) == 0
        assert len(store) == len(specs)

    def test_prune_excludes_transient_sidecars_from_the_cap(self, tmp_path):
        # The WAL/shm files come and go with connections; the cap must
        # not chase them (a cap above the real data must evict nothing).
        store, specs = self._filled_store(tmp_path)
        assert store.prune_lru(store.db_bytes()) == 0
        assert len(store) == len(specs)

    def test_null_last_access_evicts_before_accessed_rows(self, tmp_path):
        store, specs = self._filled_store(tmp_path, n=3)
        with sqlite3.connect(str(store.path)) as conn:
            conn.execute("UPDATE results SET last_access = NULL")
            # Only the last spec was ever accessed (recently).
            conn.execute(
                "UPDATE results SET last_access = 9e9 WHERE digest = ?",
                (store._digest(specs[-1].cache_key),),
            )
        store.prune_lru(store.db_bytes() // 2)
        assert specs[-1].cache_key in store


class TestMigration:
    def test_pre_lru_databases_migrate_in_place(self, tmp_path):
        # Build a database with the pre-LRU five-column schema.
        path = tmp_path / "results.sqlite"
        with sqlite3.connect(str(path)) as conn:
            conn.execute(
                "CREATE TABLE results ("
                "digest TEXT PRIMARY KEY, salt TEXT NOT NULL, spec TEXT, "
                "result TEXT NOT NULL, created_at REAL NOT NULL)"
            )
        store = ResultStore(tmp_path)
        spec = _spec()
        store.put(spec.cache_key, _result(spec), spec=spec)
        assert store.get(spec.cache_key) is not None
        assert store.prune_lru(0) == 1
