"""Tests for named server configurations."""

import pytest

from repro.errors import ConfigurationError
from repro.server import CONFIGURATION_NAMES, named_configuration


class TestNamedConfigurations:
    def test_all_names_build(self):
        for name in CONFIGURATION_NAMES:
            config = named_configuration(name)
            assert config.name == name

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            named_configuration("NT_No_C7")

    def test_baseline_turbo_on_all_states(self):
        config = named_configuration("baseline")
        assert config.turbo_enabled
        for name in ("C1", "C1E", "C6"):
            assert config.catalog.is_enabled(name)

    def test_nt_prefix_disables_turbo(self):
        for name in CONFIGURATION_NAMES:
            if name.startswith("NT_"):
                assert not named_configuration(name).turbo_enabled, name
            elif name.startswith("T_") or name in ("baseline", "AW", "AW_No_C6"):
                assert named_configuration(name).turbo_enabled, name

    def test_no_c6_disables_only_c6(self):
        config = named_configuration("NT_No_C6")
        assert not config.catalog.is_enabled("C6")
        assert config.catalog.is_enabled("C1E")
        assert config.catalog.is_enabled("C1")

    def test_no_c6_no_c1e_leaves_only_c1(self):
        config = named_configuration("NT_No_C6_No_C1E")
        enabled = [s.name for s in config.catalog.enabled_idle_states]
        assert enabled == ["C1"]

    def test_baseline_no_c1e_for_fig12(self):
        config = named_configuration("T_Baseline_No_C1E")
        enabled = [s.name for s in config.catalog.enabled_idle_states]
        assert enabled == ["C1", "C6"]

    def test_aw_has_c6a_and_derate(self):
        config = named_configuration("AW")
        assert config.is_agilewatts
        assert "C6A" in config.catalog
        assert "C6AE" in config.catalog
        assert "C6" in config.catalog
        assert config.frequency_derate == pytest.approx(0.01)

    def test_aw_no_c6_drops_c6(self):
        config = named_configuration("AW_No_C6")
        assert "C6" not in config.catalog

    def test_c6a_only_config(self):
        config = named_configuration("T_C6A_No_C6_No_C1E")
        enabled = [s.name for s in config.catalog.enabled_idle_states]
        assert enabled == ["C6A"]
        assert config.turbo_enabled

    def test_nt_c6a_only_config(self):
        config = named_configuration("NT_C6A_No_C6_No_C1E")
        enabled = [s.name for s in config.catalog.enabled_idle_states]
        assert enabled == ["C6A"]
        assert not config.turbo_enabled

    def test_baseline_has_no_derate(self):
        for name in ("baseline", "NT_Baseline", "NT_No_C6", "T_No_C6"):
            assert named_configuration(name).frequency_derate == 0.0

    def test_custom_design_powers_flow_through(self):
        from repro.core import AgileWattsDesign
        from repro.core.ccsm import CCSMConfig

        # Smaller caches -> cheaper sleep mode -> lower C6A power.
        design = AgileWattsDesign(ccsm_config=CCSMConfig(l2_capacity_bytes=512 * 1024))
        config = named_configuration("AW", design=design)
        default = named_configuration("AW")
        assert (
            config.catalog.get("C6A").power_watts
            < default.catalog.get("C6A").power_watts
        )

    def test_configs_are_independent(self):
        a = named_configuration("NT_No_C6")
        b = named_configuration("NT_Baseline")
        assert b.catalog.is_enabled("C6")  # a's disable must not leak into b
