"""CLI surface of the observability subsystem: trace, report, sweep knobs."""

import json

import pytest

from repro.cli import EXIT_OK, EXIT_USAGE, build_parser, main


class TestParser:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "--kqps", "100"])
        assert args.command == "trace"
        assert args.kqps == 100.0
        assert args.output == "trace.json"
        assert args.nodes == 1

    def test_trace_rate_flags_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "--qps", "100", "--kqps", "1"]
            )

    def test_report_flags(self):
        args = build_parser().parse_args(
            ["report", "--all", "--quick", "-o", "page.html",
             "--telemetry-hz", "20"]
        )
        assert args.all and args.quick
        assert args.output == "page.html"
        assert args.telemetry_hz == 20.0

    def test_sweep_observability_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--kqps", "10", "--telemetry-hz", "50",
             "--manifest", "runs.jsonl"]
        )
        assert args.telemetry_hz == 50.0
        assert args.manifest == "runs.jsonl"


class TestTraceCommand:
    def test_trace_writes_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "trace", "--kqps", "40", "--horizon", "0.01", "-o", str(out),
        ])
        assert code == EXIT_OK
        document = json.loads(out.read_text())
        assert document["traceEvents"]
        assert document["metadata"]["dropped_events"] == 0
        assert "perfetto" in capsys.readouterr().out

    def test_trace_requires_exactly_one_rate(self, tmp_path, capsys):
        code = main(["trace", "-o", str(tmp_path / "t.json")])
        assert code == EXIT_USAGE
        assert "rate" in capsys.readouterr().err

    def test_trace_capacity_reports_drops(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "trace", "--kqps", "100", "--horizon", "0.02",
            "--capacity", "50", "-o", str(out),
        ])
        assert code == EXIT_OK
        assert "dropped" in capsys.readouterr().out
        assert json.loads(out.read_text())["metadata"]["dropped_events"] > 0


class TestReportCommand:
    def test_report_requires_selection(self, capsys):
        assert main(["report"]) == EXIT_USAGE

    def test_report_unknown_experiment(self, capsys):
        assert main(["report", "fig99"]) == EXIT_USAGE

    def test_report_writes_single_html(self, tmp_path, capsys):
        out = tmp_path / "report.html"
        code = main([
            "report", "table1", "--quick", "--no-cache", "-o", str(out),
        ])
        assert code == EXIT_OK
        page = out.read_text()
        assert page.startswith("<!DOCTYPE html>")
        assert 'id="table1"' in page
        assert '<svg class="figure"' in page or "<img" in page
        assert "Benchmark trend" in page


class TestSweepManifest:
    def test_sweep_appends_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "runs.jsonl"
        code = main([
            "sweep", "--kqps", "20", "--horizon", "0.01", "--no-cache",
            "--telemetry-hz", "20", "--manifest", str(manifest),
        ])
        assert code == EXIT_OK
        rows = [json.loads(line) for line in manifest.read_text().splitlines()]
        events = [row["event"] for row in rows]
        assert "sweep" in events and "finished" in events
