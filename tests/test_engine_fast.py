"""The allocation-free scheduling path and its determinism contract."""

import pytest

from repro.errors import SimulationError
from repro.simkit.engine import Event, Simulator


class TestScheduleFast:
    def test_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_fast(0.3, lambda: fired.append("c"))
        sim.schedule_fast(0.1, lambda: fired.append("a"))
        sim.schedule_fast(0.2, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for name in "abcd":
            sim.schedule_at_fast(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == list("abcd")

    def test_mixed_paths_share_one_sequence(self):
        """Fast and Event entries scheduled for the same instant fire in
        scheduling order regardless of which path each went through."""
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("event1"))
        sim.schedule_at_fast(1.0, lambda: fired.append("fast1"))
        sim.schedule_at(1.0, lambda: fired.append("event2"))
        sim.schedule_at_fast(1.0, lambda: fired.append("fast2"))
        sim.run()
        assert fired == ["event1", "fast1", "event2", "fast2"]

    def test_cancellation_still_works_alongside_fast(self):
        sim = Simulator()
        fired = []
        victim = sim.schedule_at(1.0, lambda: fired.append("victim"))
        sim.schedule_at_fast(1.0, lambda: fired.append("fast"))
        victim.cancel()
        sim.run()
        assert fired == ["fast"]

    def test_returns_nothing(self):
        """No Event handle: the contract is no-cancel, no-label."""
        sim = Simulator()
        assert sim.schedule_fast(0.1, lambda: None) is None
        assert sim.schedule_at_fast(0.2, lambda: None) is None

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_fast(-1e-9, lambda: None)

    def test_past_time_rejected(self):
        sim = Simulator()
        sim.schedule_at_fast(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at_fast(0.5, lambda: None)

    def test_counters_cover_both_paths(self):
        sim = Simulator()
        sim.schedule_fast(0.1, lambda: None)
        sim.schedule(0.2, lambda: None)
        sim.schedule_fast(0.3, lambda: None)
        assert sim.pending_events == 3
        sim.run()
        assert sim.events_processed == 3
        assert sim.peak_pending_events == 3

    def test_until_pushes_entry_back(self):
        """run(until=...) must not lose the first out-of-window event."""
        sim = Simulator()
        fired = []
        sim.schedule_at_fast(1.0, lambda: fired.append(1))
        sim.schedule_at_fast(2.0, lambda: fired.append(2))
        sim.run(until=1.5)
        assert fired == [1]
        assert sim.pending_events == 1
        assert sim.now == 1.5
        sim.run()
        assert fired == [1, 2]

    def test_max_events_pushes_entry_back(self):
        sim = Simulator()
        fired = []
        for i in range(3):
            sim.schedule_at_fast(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=2)
        assert fired == [0, 1]
        assert sim.pending_events == 1
        sim.run()
        assert fired == [0, 1, 2]

    def test_event_class_still_orderable(self):
        """Event keeps __lt__ for external consumers."""
        a = Event(1.0, 0, lambda: None)
        b = Event(1.0, 1, lambda: None)
        c = Event(2.0, 0, lambda: None)
        assert a < b < c
