"""Tests for the ETC trace-driven Memcached workload."""

import pytest

from repro.errors import WorkloadError
from repro.units import US
from repro.workloads.etc_trace import (
    ETCCostModel,
    ETCRequest,
    ETCTraceGenerator,
    ZipfSampler,
    etc_service_time_model,
    memcached_etc_workload,
)


class TestZipfSampler:
    def test_ranks_in_support(self):
        sampler = ZipfSampler(n=100, seed=1)
        ranks = [sampler.sample() for _ in range(1000)]
        assert all(1 <= r <= 100 for r in ranks)

    def test_skewed_toward_low_ranks(self):
        sampler = ZipfSampler(n=1000, s=0.99, seed=2)
        ranks = [sampler.sample() for _ in range(10_000)]
        top_10 = sum(1 for r in ranks if r <= 10)
        assert top_10 / len(ranks) > 0.2  # heavy head

    def test_higher_s_more_skew(self):
        mild = ZipfSampler(n=1000, s=0.5, seed=3)
        steep = ZipfSampler(n=1000, s=1.5, seed=3)
        mild_top = sum(1 for _ in range(5000) if mild.sample() <= 10)
        steep_top = sum(1 for _ in range(5000) if steep.sample() <= 10)
        assert steep_top > mild_top

    def test_deterministic(self):
        a = ZipfSampler(n=50, seed=7)
        b = ZipfSampler(n=50, seed=7)
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]

    def test_invalid_params_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(n=0)
        with pytest.raises(WorkloadError):
            ZipfSampler(n=10, s=0.0)


class TestTraceGenerator:
    def test_get_fraction_near_97pct(self):
        gen = ETCTraceGenerator(seed=4)
        requests = list(gen.requests(10_000))
        gets = sum(1 for r in requests if r.op == "GET")
        assert gets / len(requests) == pytest.approx(0.97, abs=0.01)

    def test_value_sizes_in_etc_bands(self):
        gen = ETCTraceGenerator(seed=5)
        sizes = [r.value_bytes for r in gen.requests(5000)]
        assert min(sizes) >= 8
        assert max(sizes) <= 8192
        small = sum(1 for s in sizes if s <= 1024)
        assert small / len(sizes) > 0.9  # mostly small values

    def test_writes_flagged(self):
        request = ETCRequest("SET", key_rank=1, value_bytes=100)
        assert request.is_write
        assert not ETCRequest("GET", 1, 100).is_write

    def test_negative_count_rejected(self):
        with pytest.raises(WorkloadError):
            list(ETCTraceGenerator().requests(-1))

    def test_bad_get_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            ETCTraceGenerator(get_fraction=1.5)


class TestCostModel:
    def test_hot_keys_cheaper(self):
        costs = ETCCostModel()
        hot = ETCRequest("GET", key_rank=1, value_bytes=100)
        cold = ETCRequest("GET", key_rank=5000, value_bytes=100)
        assert costs.service_time(hot) < costs.service_time(cold)

    def test_writes_cost_more(self):
        costs = ETCCostModel()
        get = ETCRequest("GET", 500, 100)
        set_ = ETCRequest("SET", 500, 100)
        assert costs.service_time(set_) > costs.service_time(get)

    def test_bigger_values_cost_more(self):
        costs = ETCCostModel()
        small = ETCRequest("GET", 500, 64)
        big = ETCRequest("GET", 500, 4096)
        assert costs.service_time(big) > costs.service_time(small)

    def test_size_cost_is_fixed_component(self):
        costs = ETCCostModel()
        r = ETCRequest("GET", 500, 4096)
        assert costs.fixed_time(r) > costs.scalable_time(r)


class TestServiceTimeModelAdapter:
    def test_mean_in_memcached_band(self):
        model = etc_service_time_model()
        assert 4 * US <= model.mean <= 20 * US

    def test_samples_positive_and_plausible(self):
        model = etc_service_time_model(seed=8)
        samples = [model.sample() for _ in range(2000)]
        assert all(0 < s < 200 * US for s in samples)

    def test_scalable_and_fixed_stay_in_lockstep(self):
        # Drawing a full service time consumes exactly one trace record:
        # means of the parts must match the aggregate.
        model = etc_service_time_model(seed=9)
        total = sum(model.sample() for _ in range(3000)) / 3000
        assert total == pytest.approx(model.mean, rel=0.1)

    def test_frequency_scaling_applies(self):
        from repro.core.cstates import FrequencyPoint

        model = etc_service_time_model(seed=10)
        base_mean = model.mean_at(FrequencyPoint.P1)
        turbo_mean = model.mean_at(FrequencyPoint.TURBO)
        assert turbo_mean < base_mean


class TestTraceWorkloadEndToEnd:
    def test_runs_in_simulator(self):
        from repro.server import named_configuration, simulate

        result = simulate(
            memcached_etc_workload(), named_configuration("baseline"),
            qps=50_000, horizon=0.05, seed=11,
        )
        assert result.completed > 1000
        assert 0 < result.avg_core_power < 5.5

    def test_aw_still_saves_on_trace_driven_load(self):
        from repro.server import named_configuration, simulate

        base = simulate(memcached_etc_workload(), named_configuration("NT_Baseline"),
                        qps=100_000, horizon=0.05, seed=12)
        aw = simulate(memcached_etc_workload(), named_configuration("NT_AW"),
                      qps=100_000, horizon=0.05, seed=12)
        assert aw.avg_core_power < base.avg_core_power * 0.85

    def test_comparable_to_aggregate_model(self):
        # The trace-driven workload should land in the same utilisation
        # band as the aggregate-distribution Memcached model.
        from repro.server import named_configuration, simulate
        from repro.workloads import memcached_workload

        trace = simulate(memcached_etc_workload(), named_configuration("NT_Baseline"),
                         qps=100_000, horizon=0.05, seed=13)
        aggregate = simulate(memcached_workload(), named_configuration("NT_Baseline"),
                             qps=100_000, horizon=0.05, seed=13)
        assert trace.utilization == pytest.approx(aggregate.utilization, abs=0.08)
