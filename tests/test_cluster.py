"""Tests for the cluster subsystem (repro.cluster) and its spec axes."""

import pytest

from repro.cluster import (
    BALANCER_FACTORIES,
    Cluster,
    FanoutDispatcher,
    JoinShortestQueueBalancer,
    PowerOfDChoicesBalancer,
    RandomBalancer,
    RoundRobinBalancer,
    make_balancer,
)
from repro.errors import ConfigurationError
from repro.simkit.engine import Simulator
from repro.store.serialize import result_to_dict
from repro.sweep import ScenarioGrid, ScenarioSpec, SweepRunner, result_record

import random


def _spec(**overrides):
    base = dict(
        workload="memcached", config="baseline", qps=20_000,
        horizon=0.02, seed=7,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _cluster_spec(**overrides):
    base = dict(nodes=2, cores=2, fanout=2, balancer="jsq", qps=40_000)
    base.update(overrides)
    return _spec(**base)


# -- balancers ----------------------------------------------------------------

class TestBalancers:
    def _setup(self, balancer, n=4, seed=1):
        balancer.setup(n, random.Random(seed))
        return balancer

    def test_registry_has_the_quartet(self):
        assert {"random", "round_robin", "jsq", "power_of_two"} <= set(
            BALANCER_FACTORIES
        )

    def test_make_balancer_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown balancer"):
            make_balancer("psychic")

    def test_random_picks_distinct_nodes(self):
        balancer = self._setup(RandomBalancer())
        for _ in range(50):
            picks = balancer.pick(3, [0, 0, 0, 0])
            assert len(set(picks)) == 3

    def test_round_robin_cycles(self):
        balancer = self._setup(RoundRobinBalancer(), n=3)
        assert balancer.pick(1, [0, 0, 0]) == [0]
        assert balancer.pick(1, [0, 0, 0]) == [1]
        assert balancer.pick(2, [0, 0, 0]) == [2, 0]
        assert balancer.pick(1, [9, 9, 9]) == [1]  # load-blind

    def test_jsq_picks_least_loaded(self):
        balancer = self._setup(JoinShortestQueueBalancer())
        assert balancer.pick(1, [5, 2, 7, 2]) == [1]  # tie -> lowest index
        assert balancer.pick(2, [5, 2, 7, 2]) == [1, 3]

    def test_power_of_two_prefers_lighter_candidate(self):
        balancer = self._setup(PowerOfDChoicesBalancer(d=4))  # d = n: sees all
        assert balancer.pick(1, [5, 0, 7, 3]) == [1]

    def test_power_of_two_distinct_under_fanout(self):
        balancer = self._setup(PowerOfDChoicesBalancer())
        for _ in range(50):
            picks = balancer.pick(4, [1, 2, 3, 4])
            assert sorted(picks) == [0, 1, 2, 3]

    def test_pick_bounds_checked(self):
        balancer = self._setup(RandomBalancer(), n=2)
        with pytest.raises(ConfigurationError):
            balancer.pick(3, [0, 0])
        with pytest.raises(ConfigurationError):
            balancer.pick(1, [0, 0, 0])

    def test_same_seed_same_choices(self):
        a = self._setup(RandomBalancer(), seed=9)
        b = self._setup(RandomBalancer(), seed=9)
        loads = [0, 1, 2, 3]
        assert [a.pick(2, loads) for _ in range(20)] == [
            b.pick(2, loads) for _ in range(20)
        ]


# -- fan-out dispatcher (fake nodes: deterministic delays) --------------------

class _FixedDelayNode:
    """Node stub: every request completes after a fixed delay."""

    def __init__(self, sim, delay):
        self.sim = sim
        self.delay = delay
        self.in_flight = 0
        self.served = 0

    def inject(self, on_complete=None):
        self.in_flight += 1

        def done():
            self.in_flight -= 1
            self.served += 1
            if on_complete is not None:
                on_complete(self.sim.now)

        self.sim.schedule(self.delay, done)


class TestFanoutDispatcher:
    def test_logical_latency_is_the_slowest_leaf(self):
        sim = Simulator()
        nodes = [_FixedDelayNode(sim, d) for d in (0.001, 0.002, 0.003)]
        balancer = JoinShortestQueueBalancer()
        balancer.setup(3, random.Random(1))
        dispatcher = FanoutDispatcher(sim, nodes, balancer, fanout=3)
        sim.schedule_at(0.0, dispatcher.dispatch)
        sim.run()
        assert dispatcher.completed == 1
        assert dispatcher.latency.samples == [0.003]

    def test_fanout_bounds_checked(self):
        sim = Simulator()
        nodes = [_FixedDelayNode(sim, 0.001)]
        balancer = RandomBalancer()
        balancer.setup(1, random.Random(1))
        with pytest.raises(ConfigurationError, match="fanout"):
            FanoutDispatcher(sim, nodes, balancer, fanout=2)
        with pytest.raises(ConfigurationError, match="hedge"):
            FanoutDispatcher(sim, nodes, balancer, hedge_s=0.0)

    def test_hedged_duplicate_wins_the_race(self):
        sim = Simulator()
        slow, fast = _FixedDelayNode(sim, 0.010), _FixedDelayNode(sim, 0.001)
        balancer = RoundRobinBalancer()
        balancer.setup(2, random.Random(1))
        dispatcher = FanoutDispatcher(
            sim, [slow, fast], balancer, fanout=1, hedge_s=0.002
        )
        sim.schedule_at(0.0, dispatcher.dispatch)
        sim.run()
        # leaf went to the slow node (round robin starts at 0); the hedge
        # fired at 2 ms onto the fast node and answered at 3 ms, beating
        # the 10 ms original whose late completion is then ignored.
        assert dispatcher.hedges_issued == 1
        assert dispatcher.completed == 1
        assert dispatcher.latency.samples == [pytest.approx(0.003)]
        assert slow.served == 1 and fast.served == 1

    def test_hedged_duplicates_spread_over_nodes(self):
        # Loads must be re-read per duplicate: a stale snapshot would let
        # JSQ dog-pile every duplicate of a multi-leaf request onto the
        # same least-loaded node.
        sim = Simulator()
        nodes = [
            _FixedDelayNode(sim, d) for d in (0.010, 0.010, 0.001, 0.001)
        ]
        balancer = JoinShortestQueueBalancer()
        balancer.setup(4, random.Random(1))
        dispatcher = FanoutDispatcher(
            sim, nodes, balancer, fanout=2, hedge_s=0.002
        )
        sim.schedule_at(0.0, dispatcher.dispatch)
        sim.run()
        # Leaves went to idle nodes 0 and 1; at hedge time the two
        # duplicates must land on the two distinct idle nodes 2 and 3.
        assert dispatcher.hedges_issued == 2
        assert nodes[2].served == 1
        assert nodes[3].served == 1

    def test_hedge_not_issued_for_completed_leaves(self):
        sim = Simulator()
        nodes = [_FixedDelayNode(sim, 0.001), _FixedDelayNode(sim, 0.001)]
        balancer = RoundRobinBalancer()
        balancer.setup(2, random.Random(1))
        dispatcher = FanoutDispatcher(
            sim, nodes, balancer, fanout=2, hedge_s=0.005
        )
        sim.schedule_at(0.0, dispatcher.dispatch)
        sim.run()
        assert dispatcher.hedges_issued == 0
        assert dispatcher.completed == 1


# -- spec axes ----------------------------------------------------------------

class TestClusterSpec:
    def test_defaults_are_single_node(self):
        spec = _spec()
        assert spec.nodes == 1
        assert spec.fanout == 1
        assert spec.hedge_ms is None
        assert not spec.is_cluster

    def test_cluster_flag(self):
        assert _spec(nodes=2).is_cluster
        assert _spec(nodes=2, fanout=2).is_cluster
        assert _spec(hedge_ms=0.5).is_cluster
        assert not _spec(balancer="jsq").is_cluster  # balancer alone: no-op

    def test_single_node_balancer_canonicalised(self):
        # With one node the policy cannot affect results: the name is
        # validated, then folded to the default so all single-node
        # points of a balancer sweep share one cache key.
        assert _spec(balancer="jsq").balancer == "random"
        assert _spec(balancer="jsq").cache_key == _spec().cache_key
        assert _spec(nodes=2, balancer="jsq").balancer == "jsq"
        with pytest.raises(ConfigurationError):
            _spec(balancer="psychic")  # still validated first

    def test_fanout_cannot_exceed_nodes(self):
        with pytest.raises(ConfigurationError, match="fanout"):
            _spec(nodes=2, fanout=3)

    def test_unknown_balancer_rejected(self):
        with pytest.raises(ConfigurationError, match="balancer"):
            _spec(balancer="psychic")

    @pytest.mark.parametrize("field,value", [
        ("nodes", 0), ("fanout", 0), ("hedge_ms", 0.0), ("hedge_ms", -1),
    ])
    def test_invalid_cluster_numbers_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            _spec(**{field: value})

    def test_cache_key_distinguishes_cluster_axes(self):
        base = _cluster_spec()
        variants = [
            _cluster_spec(nodes=3),
            _cluster_spec(balancer="random"),
            _cluster_spec(fanout=1),
            _cluster_spec(hedge_ms=0.5),
        ]
        keys = {v.cache_key for v in variants}
        assert len(keys) == len(variants)
        assert base.cache_key not in keys

    def test_round_trip_with_cluster_fields(self):
        spec = _cluster_spec(hedge_ms=0.25)
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.cache_key == spec.cache_key

    def test_legacy_dicts_parse_as_single_node(self):
        # Grid files from before the cluster axes existed must still load.
        data = {
            "workload": "memcached", "config": "baseline", "qps": 20_000.0,
            "cores": 10, "horizon": 0.02, "seed": 7, "governor": "menu",
            "turbo": None, "snoops": True,
        }
        spec = ScenarioSpec.from_dict(data)
        assert spec.nodes == 1 and spec.fanout == 1
        assert not spec.is_cluster

    def test_grid_product_cluster_axes(self):
        grid = ScenarioGrid.product(
            qps=[80_000], nodes=[2, 4], balancers=["random", "jsq"],
            fanouts=[2], hedge_ms=0.5,
        )
        assert len(grid) == 4
        assert {s.nodes for s in grid} == {2, 4}
        assert all(s.fanout == 2 and s.hedge_ms == 0.5 for s in grid)

    def test_per_node_workloads_are_decorrelated(self):
        spec = _cluster_spec()
        w0, w1 = spec.build_workload(0), spec.build_workload(1)
        assert w0.name == w1.name
        assert w0.service.sample() != w1.service.sample()

    def test_result_record_carries_cluster_fields(self):
        spec = _cluster_spec()
        record = result_record(spec, SweepRunner(cache={}).run(spec))
        assert record["nodes"] == 2
        assert record["balancer"] == "jsq"
        assert record["fanout"] == 2
        assert record["hedge_ms"] is None


# -- cluster simulation -------------------------------------------------------

class TestCluster:
    def test_single_node_cluster_matches_server_node(self):
        # A 1-node fanout-1 cluster replays the standalone event sequence
        # exactly: every observable is bit-identical.
        from repro.server import named_configuration, simulate

        spec = _spec()
        cluster = Cluster(
            workload_factory=spec.build_workload,
            configuration=spec.build_configuration(),
            qps=spec.qps, nodes=1, cores=spec.cores, horizon=spec.horizon,
            seed=spec.seed, governor_factory=spec.governor_factory(),
        )
        via_cluster = result_to_dict(cluster.run())
        standalone = result_to_dict(
            simulate(
                spec.build_workload(), named_configuration("baseline"),
                qps=spec.qps, cores=spec.cores, horizon=spec.horizon,
                seed=spec.seed,
            )
        )
        assert via_cluster.pop("node_detail") is not None
        assert standalone.pop("node_detail") is None
        assert via_cluster == standalone

    def test_single_node_spec_executes_original_path(self):
        # nodes=1, fanout=1 through the spec is the acceptance criterion:
        # bit-identical to the pre-cluster single-node result.
        from repro.server import named_configuration, simulate

        result = _spec(nodes=1, fanout=1).execute()
        legacy = simulate(
            _spec().build_workload(), named_configuration("baseline"),
            qps=20_000.0, cores=10, horizon=0.02, seed=7,
        )
        assert result_to_dict(result) == result_to_dict(legacy)

    def test_cluster_run_is_deterministic(self):
        spec = _cluster_spec(hedge_ms=0.1)
        assert result_to_dict(spec.execute()) == result_to_dict(spec.execute())

    def test_serial_and_process_executors_bit_identical(self):
        specs = [_cluster_spec(seed=1), _cluster_spec(seed=2, balancer="random")]
        serial = SweepRunner(cache={}).run_many(specs)
        parallel = SweepRunner(executor="process", jobs=2, cache={}).run_many(specs)
        for s, p in zip(serial, parallel):
            assert result_to_dict(s) == result_to_dict(p)

    def test_node_detail_shape(self):
        result = _cluster_spec().execute()
        assert len(result.node_detail) == 2
        for i, detail in enumerate(result.node_detail):
            assert detail["node"] == i
            assert detail["completed"] > 0
            assert 0.99 < sum(detail["residency"].values()) < 1.01
        # every leaf is served by exactly one node (no hedging here)
        leaves = sum(d["completed"] for d in result.node_detail)
        assert leaves == result.completed * 2  # fanout 2

    def test_cluster_package_power_sums_nodes(self):
        result = _cluster_spec().execute()
        per_node = sum(d["package_power"] for d in result.node_detail)
        assert result.package_power == pytest.approx(per_node)

    def test_fanout_amplifies_tail_at_constant_leaf_load(self):
        # The tail-at-scale effect: at a fixed per-node leaf rate, the
        # logical p99 grows with fan-out under a deep-idle governor.
        per_node_qps, nodes = 20_000, 4
        runs = {}
        for fanout in (1, 4):
            spec = _spec(
                qps=per_node_qps * nodes / fanout, nodes=nodes,
                fanout=fanout, cores=4, horizon=0.05,
            )
            runs[fanout] = SweepRunner(cache={}).run(spec)
        assert runs[4].tail_latency > runs[1].tail_latency
        assert runs[4].avg_latency > runs[1].avg_latency

    def test_store_round_trips_cluster_results(self, tmp_path):
        from repro.store import ResultStore

        spec = _cluster_spec(hedge_ms=0.05)
        result = spec.execute()
        store = ResultStore(tmp_path)
        store.put(spec.cache_key, result, spec=spec)
        loaded = store.get(spec.cache_key)
        assert result_to_dict(loaded) == result_to_dict(result)
        assert loaded.node_detail == result.node_detail
        assert loaded.hedges_issued == result.hedges_issued

    def test_invalid_cluster_arguments(self):
        spec = _spec()
        with pytest.raises(ConfigurationError):
            Cluster(
                workload_factory=spec.build_workload,
                configuration=spec.build_configuration(),
                qps=spec.qps, nodes=0,
            )
