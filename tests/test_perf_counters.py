"""Perf counters on RunResult and the ``sweep --emit perf`` level."""

import pytest

from repro.errors import ConfigurationError
from repro.server import named_configuration, simulate
from repro.store.serialize import result_from_dict, result_to_dict
from repro.sweep import result_record
from repro.sweep.runner import EMIT_LEVELS
from repro.sweep.spec import ScenarioSpec
from repro.workloads import memcached_workload


@pytest.fixture(scope="module")
def single_node_result():
    return simulate(
        memcached_workload(), named_configuration("baseline"),
        qps=40_000, horizon=0.02, seed=9,
    )


@pytest.fixture(scope="module")
def cluster_spec_result():
    spec = ScenarioSpec(
        "memcached", "baseline", qps=30_000, horizon=0.02, seed=9,
        nodes=2, balancer="round_robin",
    )
    return spec, spec.execute()


class TestRunResultCounters:
    def test_counters_populated(self, single_node_result):
        assert single_node_result.events_processed > 0
        assert single_node_result.peak_pending_events > 0
        # Streaming arrivals bound the heap far below total events.
        assert (
            single_node_result.peak_pending_events
            < single_node_result.events_processed
        )

    def test_events_per_request(self, single_node_result):
        ratio = single_node_result.events_per_request
        assert ratio == (
            single_node_result.events_processed / single_node_result.completed
        )
        # Each request needs at least arrival + completion.
        assert ratio > 2.0

    def test_events_per_request_empty(self):
        from repro.server.metrics import RunResult
        from repro.simkit.stats import PercentileTracker

        empty = RunResult(
            config_name="c", workload_name="w", qps=1.0, horizon=1.0,
            cores=1, residency={}, transitions_per_second={},
            avg_core_power=0.0, package_power=0.0,
            server_latency=PercentileTracker(), completed=0,
            turbo_grant_rate=0.0, network_latency=0.0,
        )
        assert empty.events_per_request == 0.0

    def test_cluster_counters_are_fleet_wide(self, cluster_spec_result):
        _, result = cluster_spec_result
        assert result.events_processed > 0
        assert result.peak_pending_events > 0

    def test_store_round_trip_preserves_counters(self, single_node_result):
        restored = result_from_dict(result_to_dict(single_node_result))
        assert restored.events_processed == single_node_result.events_processed
        assert (
            restored.peak_pending_events
            == single_node_result.peak_pending_events
        )


class TestEmitPerf:
    def test_emit_levels_registered(self):
        assert "perf" in EMIT_LEVELS

    def test_perf_record_keys(self, single_node_result):
        spec = ScenarioSpec("memcached", "baseline", qps=40_000,
                            horizon=0.02, seed=9)
        record = result_record(spec, single_node_result, emit="perf")
        assert record["events_processed"] == single_node_result.events_processed
        assert (
            record["peak_pending_events"]
            == single_node_result.peak_pending_events
        )
        assert record["events_per_request"] == pytest.approx(
            single_node_result.events_per_request
        )

    def test_headline_record_has_no_perf_keys(self, single_node_result):
        spec = ScenarioSpec("memcached", "baseline", qps=40_000,
                            horizon=0.02, seed=9)
        record = result_record(spec, single_node_result, emit="headline")
        assert "events_processed" not in record
        assert "peak_pending_events" not in record

    def test_unknown_emit_rejected(self, single_node_result):
        spec = ScenarioSpec("memcached", "baseline", qps=40_000,
                            horizon=0.02, seed=9)
        with pytest.raises(ConfigurationError):
            result_record(spec, single_node_result, emit="bogus")


class TestCliEmitPerf:
    def test_sweep_emit_perf_jsonl(self, tmp_path, capsys):
        import json

        from repro.cli import main

        out = tmp_path / "perf.jsonl"
        code = main([
            "sweep", "--kqps", "20", "--horizon", "0.01",
            "--emit", "perf", "--no-cache", "-o", str(out),
        ])
        assert code == 0
        records = [
            json.loads(line) for line in out.read_text().splitlines() if line
        ]
        assert records
        for record in records:
            assert record["events_processed"] > 0
            assert record["peak_pending_events"] > 0
            assert record["events_per_request"] > 0
