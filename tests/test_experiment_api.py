"""Tests for the first-class Experiment API (repro.experiments.api)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.api import (
    FORMATS,
    Experiment,
    ExperimentResult,
    all_experiments,
    collect_grid,
    execute_experiments,
    experiment_ids,
    get_experiment,
    get_experiment_class,
    output_extension,
    register_experiment,
    render,
    render_csv,
    render_json,
    render_jsonl,
    run_experiments,
    unregister_experiment,
)
from repro.sweep import ScenarioGrid, ScenarioSpec

#: The canonical reading order `repro run --all` uses.
EXPECTED_IDS = [
    "table1", "table2", "table3", "table4", "motivation",
    "latency_breakdown", "validation", "snoop", "fig8", "fig9", "fig10",
    "fig11", "fig12", "fig13", "table5", "ablation", "governor_study",
    "proportionality", "sensitivity",
    "fanout_tail", "balancer_study", "cluster_energy", "fleet_scale",
]


class TestRegistry:
    def test_all_experiments_registered_in_reading_order(self):
        assert experiment_ids() == EXPECTED_IDS

    def test_round_trip(self):
        for experiment_id in experiment_ids():
            experiment = get_experiment(experiment_id)
            assert experiment.id == experiment_id
            assert isinstance(experiment.title, str) and experiment.title
            assert isinstance(experiment.artifact, str) and experiment.artifact
            assert type(experiment) is get_experiment_class(experiment_id)

    def test_unknown_id_raises(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            get_experiment("fig99")

    def test_duplicate_id_rejected(self):
        class Impostor(Experiment):
            id = "fig8"
            title = "not the real fig8"
            artifact = "Figure 8"

            def analyze(self, results=None):
                return self.make_result(records=[])

        with pytest.raises(ConfigurationError, match="already registered"):
            register_experiment(Impostor)

    def test_register_and_unregister(self):
        class Throwaway(Experiment):
            id = "throwaway_test_experiment"
            title = "throwaway"
            artifact = "test"

            def analyze(self, results=None):
                return self.make_result(records=[{"x": 1}])

        try:
            register_experiment(Throwaway)
            assert "throwaway_test_experiment" in experiment_ids()
            result = get_experiment("throwaway_test_experiment").analyze()
            assert result.records == [{"x": 1}]
        finally:
            unregister_experiment("throwaway_test_experiment")
        assert "throwaway_test_experiment" not in experiment_ids()

    def test_missing_metadata_rejected(self):
        class NoTitle(Experiment):
            id = "no_title"
            artifact = "test"

            def analyze(self, results=None):  # pragma: no cover
                return self.make_result(records=[])

        with pytest.raises(ConfigurationError, match="title"):
            register_experiment(NoTitle)

    def test_all_experiments_returns_fresh_instances(self):
        first = all_experiments()
        second = all_experiments()
        assert [e.id for e in first] == EXPECTED_IDS
        assert all(a is not b for a, b in zip(first, second))


class TestGridUnion:
    def test_fig10_grid_covers_fig9(self):
        fig9 = get_experiment("fig9")
        fig10 = get_experiment("fig10")
        keys9 = {spec.cache_key for spec in fig9.grid()}
        keys10 = {spec.cache_key for spec in fig10.grid()}
        assert keys9 < keys10
        union = collect_grid([fig9, fig10])
        assert len(union) == len(keys10)

    def test_table5_grid_equals_fig8(self):
        fig8 = get_experiment("fig8")
        table5 = get_experiment("table5")
        keys8 = {spec.cache_key for spec in fig8.grid()}
        keys5 = {spec.cache_key for spec in table5.grid()}
        assert keys5 == keys8
        union = collect_grid([fig8, table5])
        assert len(union) == len(keys8)

    def test_union_preserves_first_occurrence_order(self):
        spec_a = ScenarioSpec(workload="memcached", config="baseline",
                              qps=20_000, horizon=0.02, seed=7)
        spec_b = ScenarioSpec(workload="memcached", config="AW",
                              qps=20_000, horizon=0.02, seed=7)

        class GridOnly(Experiment):
            id = "grid_only"
            title = "grid only"
            artifact = "test"

            def __init__(self, specs):
                super().__init__()
                self._specs = specs

            def grid(self):
                return ScenarioGrid(self._specs)

            def analyze(self, results=None):  # pragma: no cover
                return self.make_result(records=[])

        union = collect_grid([
            GridOnly([spec_a, spec_b]), GridOnly([spec_b, spec_a]),
        ])
        assert [spec.cache_key for spec in union] == [
            spec_a.cache_key, spec_b.cache_key,
        ]

    def test_static_experiments_have_empty_grids(self):
        for experiment_id in ("table1", "table2", "table3", "table4",
                              "motivation", "latency_breakdown",
                              "validation", "snoop", "ablation",
                              "sensitivity"):
            assert len(get_experiment(experiment_id).grid()) == 0


class TestBatchedExecution:
    def test_execute_returns_result_for_every_unique_spec(self):
        fig9 = get_experiment("fig9").quick()
        result_map = execute_experiments([fig9])
        keys = {spec.cache_key for spec in fig9.grid()}
        assert set(result_map) == keys

    def test_shared_points_analyzed_from_one_map(self):
        fig9 = get_experiment("fig9").quick()
        fig10 = get_experiment("fig10").quick()
        results = run_experiments([fig9, fig10])
        assert list(results) == ["fig9", "fig10"]
        assert results["fig9"].records and results["fig10"].records

    def test_batched_equals_standalone(self):
        experiment = get_experiment("table5").quick()
        batched = run_experiments([experiment])["table5"]
        standalone = get_experiment("table5").quick().execute()
        assert batched.records == standalone.records


class TestEveryExperimentQuick:
    """Every registered experiment's grid()/analyze() on a tiny horizon."""

    @pytest.fixture(scope="class")
    def quick_results(self):
        experiments = [e.quick() for e in all_experiments()]
        return experiments, run_experiments(experiments)

    def test_every_experiment_emits_records(self, quick_results):
        _, results = quick_results
        for experiment_id in EXPECTED_IDS:
            assert results[experiment_id].records, (
                f"{experiment_id} emitted no records"
            )

    def test_records_are_json_safe(self, quick_results):
        _, results = quick_results
        for result in results.values():
            json.dumps(result.to_json_dict())

    def test_sim_records_carry_residency_detail(self, quick_results):
        _, results = quick_results
        # Fig 9/11 records are RunResult records directly.
        for experiment_id in ("fig9", "fig11"):
            for record in results[experiment_id].records:
                assert "residency" in record
                assert "transitions_per_second" in record
        # Fig 8 nests the per-config run detail.
        for record in results["fig8"].records:
            assert "residency" in record["baseline"]
            assert "transitions_per_second" in record["aw"]

    def test_every_format_renders(self, quick_results):
        experiments, results = quick_results
        for experiment in experiments:
            result = results[experiment.id]
            for fmt in FORMATS:
                text = render(experiment, result, fmt)
                assert isinstance(text, str) and text


class TestRenderers:
    @pytest.fixture(scope="class")
    def table2_result(self):
        return get_experiment("table2").analyze()

    def test_render_json_envelope(self, table2_result):
        data = json.loads(render_json(table2_result))
        assert data["experiment"] == "table2"
        assert data["artifact"] == "Table 2"
        assert len(data["records"]) == 6

    def test_render_jsonl_tags_every_line(self, table2_result):
        lines = render_jsonl(table2_result).splitlines()
        assert len(lines) == 6
        for line in lines:
            record = json.loads(line)
            assert record["experiment"] == "table2"
            assert record["state"]

    def test_render_csv_header_is_union_of_keys(self, table2_result):
        lines = render_csv(table2_result).splitlines()
        assert lines[0].split(",")[:2] == ["state", "clocks"]
        assert len(lines) == 7  # header + 6 states

    def test_csv_nests_containers_as_json(self):
        result = ExperimentResult(
            experiment_id="x", title="x", artifact="x",
            records=[{"a": 1, "nested": {"k": 2}}],
        )
        lines = render_csv(result).splitlines()
        assert lines[0] == "a,nested"
        assert json.loads(lines[1].split(",", 1)[1].strip('"').replace('""', '"')) \
            == {"k": 2}

    def test_unknown_format_rejected(self, table2_result):
        with pytest.raises(ConfigurationError, match="unknown output format"):
            render(get_experiment("table2"), table2_result, "yaml")
        with pytest.raises(ConfigurationError):
            output_extension("yaml")

    def test_output_extensions(self):
        assert output_extension("table") == "txt"
        assert output_extension("json") == "json"
        assert output_extension("jsonl") == "jsonl"
        assert output_extension("csv") == "csv"


class TestLegacyShims:
    """run()/main() keep their historical types and outputs."""

    def test_run_shims_return_previous_types(self):
        from repro.experiments import table1, table2, table5

        rows = table1.run()
        assert isinstance(rows, list) and isinstance(rows[0], tuple)
        assert isinstance(table2.run(), list)
        savings = table5.run(rates_kqps=[20], horizon=0.02)
        assert isinstance(savings, dict)
        assert all(isinstance(v, float) for v in savings.values())

    def test_main_shims_print(self, capsys):
        from repro.experiments import motivation

        motivation.main()
        out = capsys.readouterr().out
        assert "Eq. 1" in out
        assert out.endswith("\n")

    def test_quick_of_static_experiment_is_equivalent(self):
        quick = get_experiment("table2").quick()
        assert quick.analyze().records == get_experiment("table2").analyze().records


class TestReviewRegressions:
    def test_result_record_keeps_spec_identity_for_aliases(self):
        """A registered alias must round-trip as the swept key, not the
        workload object's own display name."""
        from repro.sweep import SweepRunner, result_record
        from repro.sweep.spec import WORKLOAD_FACTORIES, register_workload
        from repro.workloads import memcached_workload

        register_workload("mc-alias", memcached_workload)
        try:
            spec = ScenarioSpec(workload="mc-alias", config="baseline",
                                qps=20_000, horizon=0.02, seed=7)
            record = result_record(spec, SweepRunner().run(spec))
            assert record["workload"] == "mc-alias"
            assert record["config"] == "baseline"
        finally:
            del WORKLOAD_FACTORIES["mc-alias"]

    def test_governor_study_renders_with_custom_subsets(self):
        from repro.experiments.governor_study import (
            GovernorStudyExperiment,
            GovernorStudyParams,
        )

        experiment = GovernorStudyExperiment(
            GovernorStudyParams(qps=20_000, horizon=0.02,
                                governors=("menu",))
        )
        text = experiment.render_text(experiment.execute())
        assert "Governor study" in text
        assert "cannot match AW" not in text  # summary needs all defaults

    def test_fallback_uses_batch_runner(self):
        """A point missing from the map resolves through the batch's
        runner, not the process-wide default."""
        from repro.sweep import SweepRunner

        spec = ScenarioSpec(workload="memcached", config="baseline",
                            qps=20_000, horizon=0.02, seed=7)

        class OnePoint(Experiment):
            id = "one_point_fallback_test"
            title = "fallback"
            artifact = "test"

            def grid(self):
                return ScenarioGrid([spec])

            def analyze(self, results=None):
                run = self.point({}, spec)  # empty map forces fallback
                return self.make_result(records=[run.to_record()])

        ran = []

        class SpyRunner(SweepRunner):
            def run(self, one_spec):
                ran.append(one_spec.cache_key)
                return super().run(one_spec)

        result = run_experiments([OnePoint()], runner=SpyRunner())
        assert ran  # the fallback went through the batch runner
        assert result["one_point_fallback_test"].records
