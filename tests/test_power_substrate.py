"""Tests for the power substrate: leakage, PDN, clock, RAPL."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PowerModelError, SimulationError
from repro.power import ADPLL, FIVR, LDO, MBVR, ClockDistribution, EnergyCounter, RAPLDomain
from repro.power.leakage import (
    LeakageModel,
    node_scaling_factor,
    scale_leakage_power,
    sleep_transistor_efficiency,
)
from repro.units import MILLIWATT


class TestLeakageScaling:
    def test_22_to_14_is_about_0_7(self):
        # The paper's Table 3 gamma footnote: alpha ~ 0.7x.
        assert node_scaling_factor(22, 14) == pytest.approx(0.7, abs=0.02)

    def test_same_node_is_identity(self):
        assert node_scaling_factor(14, 14) == 1.0

    def test_unknown_node_rejected(self):
        with pytest.raises(PowerModelError):
            node_scaling_factor(22, 3)

    def test_scale_leakage_power(self):
        scaled = scale_leakage_power(0.1, 22, 14)
        assert scaled == pytest.approx(0.07, abs=0.005)

    def test_beta_discount(self):
        full = scale_leakage_power(0.1, 22, 14, voltage_scaling=1.0)
        reduced = scale_leakage_power(0.1, 22, 14, voltage_scaling=0.7)
        assert reduced == pytest.approx(full * 0.7)

    def test_negative_power_rejected(self):
        with pytest.raises(PowerModelError):
            scale_leakage_power(-1.0, 22, 14)

    def test_bad_beta_rejected(self):
        with pytest.raises(PowerModelError):
            scale_leakage_power(1.0, 22, 14, voltage_scaling=1.5)


class TestSleepTransistor:
    def test_efficiency_is_vout_over_vin(self):
        assert sleep_transistor_efficiency(1.0, 0.55) == pytest.approx(0.55)

    def test_equal_voltages_perfect(self):
        assert sleep_transistor_efficiency(0.8, 0.8) == 1.0

    def test_vout_above_vin_rejected(self):
        with pytest.raises(PowerModelError):
            sleep_transistor_efficiency(0.5, 0.8)

    def test_non_positive_rejected(self):
        with pytest.raises(PowerModelError):
            sleep_transistor_efficiency(0.0, 0.0)


class TestLeakageModel:
    def test_gated_residual_band(self):
        # 70% of core leakage gated at 96% effectiveness leaves ~2.8% of
        # the gated part plus the full ungated 30%.
        m = LeakageModel(full_leakage_watts=1.44, gate_effectiveness=0.96)
        residual = m.gated_residual(gated_fraction=0.7)
        expected = 1.44 * 0.7 * 0.04 + 1.44 * 0.3
        assert residual == pytest.approx(expected)

    def test_residual_of_gated_region_only(self):
        m = LeakageModel(1.0, gate_effectiveness=0.95)
        assert m.residual_of_gated_region(0.7) == pytest.approx(0.7 * 0.05)

    def test_full_gating_zero_effectiveness(self):
        m = LeakageModel(1.0, gate_effectiveness=0.0)
        assert m.gated_residual(1.0) == pytest.approx(1.0)

    def test_voltage_scaling_quadratic(self):
        m = LeakageModel(1.0)
        assert m.at_voltage(1.0, 0.5).full_leakage_watts == pytest.approx(0.25)

    def test_bad_fraction_rejected(self):
        with pytest.raises(PowerModelError):
            LeakageModel(1.0).gated_residual(1.5)

    @given(frac=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_residual_never_exceeds_full(self, frac):
        m = LeakageModel(2.0, gate_effectiveness=0.96)
        assert 0.0 <= m.gated_residual(frac) <= 2.0


class TestVoltageRegulators:
    def test_fivr_conversion_loss_at_80pct(self):
        # Delivering P at 80% efficiency burns 0.25 P.
        fivr = FIVR()
        assert fivr.conversion_loss(0.16) == pytest.approx(0.04)

    def test_fivr_static_loss_default_100mw(self):
        assert FIVR().static_loss_watts == pytest.approx(100 * MILLIWATT)

    def test_fivr_input_power(self):
        fivr = FIVR()
        assert fivr.input_power(0.8) == pytest.approx(0.8 + 0.2 + 0.1)

    def test_fivr_static_loss_applies_at_zero_load(self):
        assert FIVR().input_power(0.0) == pytest.approx(0.1)

    def test_mbvr_more_efficient_no_static(self):
        mbvr = MBVR()
        assert mbvr.efficiency > FIVR().efficiency
        assert mbvr.static_loss_watts == 0.0

    def test_ldo_efficiency_is_voltage_ratio(self):
        ldo = LDO(v_in=1.0, v_out=0.78)
        assert ldo.efficiency == pytest.approx(0.78)

    def test_ldo_vout_above_vin_rejected(self):
        with pytest.raises(PowerModelError):
            LDO(v_in=0.5, v_out=1.0)

    def test_negative_delivery_rejected(self):
        with pytest.raises(PowerModelError):
            FIVR().conversion_loss(-1.0)

    def test_bad_efficiency_rejected(self):
        from repro.power.pdn import VoltageRegulator

        with pytest.raises(PowerModelError):
            VoltageRegulator("x", efficiency=0.0)
        with pytest.raises(PowerModelError):
            VoltageRegulator("x", efficiency=1.1)


class TestADPLL:
    def test_locked_power_is_7mw(self):
        assert ADPLL().idle_power == pytest.approx(7 * MILLIWATT)

    def test_power_on_when_locked_is_free(self):
        # AW's third idea: keeping the PLL locked makes wake cost zero.
        assert ADPLL().power_on() == 0.0

    def test_power_off_then_on_pays_relock(self):
        pll = ADPLL()
        pll.power_off()
        assert pll.idle_power == 0.0
        assert pll.power_on() == pytest.approx(pll.relock_time)
        assert pll.locked

    def test_negative_power_rejected(self):
        with pytest.raises(PowerModelError):
            ADPLL(power_watts=-1.0)


class TestClockDistribution:
    def test_gate_ungate_cycle_costs(self):
        cdn = ClockDistribution()
        assert cdn.gate("ufpg") == 2
        assert cdn.is_gated("ufpg")
        assert cdn.ungate("ufpg") == 2
        assert not cdn.is_gated("ufpg")

    def test_idempotent_gating_free(self):
        cdn = ClockDistribution()
        cdn.gate("ufpg")
        assert cdn.gate("ufpg") == 0

    def test_all_gated(self):
        cdn = ClockDistribution()
        cdn.gate("ufpg")
        cdn.gate("caches")
        assert cdn.all_gated
        cdn.ungate("caches")
        assert not cdn.all_gated
        assert not cdn.all_running

    def test_unknown_domain_rejected(self):
        with pytest.raises(PowerModelError):
            ClockDistribution().gate("gpu")


class TestEnergyCounter:
    def test_integrates_piecewise_constant(self):
        c = EnergyCounter("t")
        c.start(0.0, 2.0)
        c.set_power(1.0, 4.0)
        assert c.finish(2.0) == pytest.approx(2.0 * 1.0 + 4.0 * 1.0)

    def test_zero_span(self):
        c = EnergyCounter("t")
        c.start(0.0, 5.0)
        assert c.finish(0.0) == 0.0

    def test_set_before_start_rejected(self):
        with pytest.raises(SimulationError):
            EnergyCounter("t").set_power(1.0, 1.0)

    def test_time_backwards_rejected(self):
        c = EnergyCounter("t")
        c.start(0.0, 1.0)
        c.set_power(2.0, 1.0)
        with pytest.raises(SimulationError):
            c.set_power(1.0, 1.0)

    def test_negative_power_rejected(self):
        c = EnergyCounter("t")
        with pytest.raises(PowerModelError):
            c.start(0.0, -1.0)


class TestRAPLDomain:
    def test_average_power(self):
        dom = RAPLDomain("pkg")
        a = dom.add_counter("core0")
        b = dom.add_counter("core1")
        a.start(0.0, 1.0)
        b.start(0.0, 3.0)
        dom.begin_window(0.0)
        assert dom.average_power(2.0) == pytest.approx(4.0)

    def test_add_counter_idempotent(self):
        dom = RAPLDomain("pkg")
        assert dom.add_counter("x") is dom.add_counter("x")

    def test_zero_window_rejected(self):
        dom = RAPLDomain("pkg")
        dom.add_counter("x").start(0.0, 1.0)
        dom.begin_window(1.0)
        with pytest.raises(SimulationError):
            dom.average_power(1.0)
