"""Tests for C-state definitions and catalogs (Tables 1 and 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cstates import (
    C0_P1_POWER,
    C1E_POWER,
    C1_POWER,
    C6_POWER,
    C6A_POWER,
    C6AE_POWER,
    CState,
    CStateCatalog,
    FrequencyPoint,
    active_power,
    agilewatts_catalog,
    make_c1,
    make_c1e,
    make_c6,
    make_c6a,
    make_c6ae,
    skylake_baseline_catalog,
)
from repro.errors import CStateError
from repro.units import US


class TestTable1Values:
    """The canonical Table 1 numbers."""

    def test_c0_p1_power(self):
        assert C0_P1_POWER == pytest.approx(4.0)

    def test_c1_power(self):
        assert C1_POWER == pytest.approx(1.44)

    def test_c1e_power(self):
        assert C1E_POWER == pytest.approx(0.88)

    def test_c6_power(self):
        assert C6_POWER == pytest.approx(0.1)

    def test_c1_transition_2us(self):
        assert make_c1().transition_time == pytest.approx(2 * US)

    def test_c1e_transition_10us(self):
        assert make_c1e().transition_time == pytest.approx(10 * US)

    def test_c6_transition_133us(self):
        assert make_c6().transition_time == pytest.approx(133 * US)

    def test_c6_target_residency_600us(self):
        assert make_c6().target_residency == pytest.approx(600 * US)

    def test_c6a_matches_c1_software_latency(self):
        # C6A transition ~= C1 transition + ~100 ns of hardware.
        extra = make_c6a().transition_time - make_c1().transition_time
        assert extra == pytest.approx(100e-9, rel=0.01)

    def test_c6ae_matches_c1e_software_latency(self):
        extra = make_c6ae().transition_time - make_c1e().transition_time
        assert extra == pytest.approx(100e-9, rel=0.01)

    def test_power_ordering(self):
        # Deeper (or AW-replaced) states consume strictly less.
        assert C0_P1_POWER > C1_POWER > C1E_POWER > C6A_POWER > C6AE_POWER > C6_POWER


class TestComponentStates:
    def test_c6a_keeps_pll_on(self):
        assert make_c6a().components.adpll == "on"

    def test_c6_turns_pll_off(self):
        assert make_c6().components.adpll == "off"

    def test_c6a_keeps_caches_coherent(self):
        assert make_c6a().components.l1l2 == "coherent"

    def test_c6_flushes_caches(self):
        assert make_c6().components.l1l2 == "flushed"

    def test_c6a_in_place_context(self):
        assert make_c6a().components.context == "in-place-sr"

    def test_c6_external_context(self):
        assert make_c6().components.context == "sr-sram"

    def test_only_c0_runs_clocks(self):
        assert make_c1().components.clocks == "stopped"
        assert make_c6ae().components.clocks == "stopped"


class TestCStateValidation:
    def test_negative_power_rejected(self):
        with pytest.raises(CStateError):
            CState("X", -1.0, 0.0, 0.0, 0.0, None, 1)

    def test_negative_latency_rejected(self):
        with pytest.raises(CStateError):
            CState("X", 1.0, -1e-6, 0.0, 0.0, None, 1)

    def test_with_power_copies(self):
        c = make_c6a().with_power(0.29)
        assert c.power_watts == 0.29
        assert c.name == "C6A"
        assert make_c6a().power_watts == C6A_POWER  # original untouched


class TestBaselineCatalog:
    def test_has_expected_states(self):
        cat = skylake_baseline_catalog()
        for name in ("C0", "C1", "C1E", "C6"):
            assert name in cat

    def test_idle_states_sorted_by_depth(self):
        cat = skylake_baseline_catalog()
        names = [s.name for s in cat.idle_states]
        assert names == ["C1", "C1E", "C6"]

    def test_get_unknown_rejected(self):
        with pytest.raises(CStateError):
            skylake_baseline_catalog().get("C8")

    def test_shallowest_deepest(self):
        cat = skylake_baseline_catalog()
        assert cat.shallowest().name == "C1"
        assert cat.deepest().name == "C6"

    def test_table1_rows_shape(self):
        rows = skylake_baseline_catalog().table1_rows()
        assert len(rows) == 4
        assert rows[0][0].startswith("C0")


class TestAgileWattsCatalog:
    def test_replaces_c1_c1e(self):
        cat = agilewatts_catalog()
        assert "C6A" in cat
        assert "C6AE" in cat
        assert "C1" not in cat
        assert "C1E" not in cat

    def test_keeps_c6_by_default(self):
        assert "C6" in agilewatts_catalog()

    def test_can_drop_c6(self):
        assert "C6" not in agilewatts_catalog(keep_c6=False)

    def test_custom_powers(self):
        cat = agilewatts_catalog(c6a_power=0.31, c6ae_power=0.24)
        assert cat.get("C6A").power_watts == 0.31
        assert cat.get("C6AE").power_watts == 0.24

    def test_c6a_has_snoop_wake_overhead(self):
        assert agilewatts_catalog().get("C6A").snoop_wake_overhead > 0


class TestDisabling:
    def test_disable_removes_from_enabled(self):
        cat = skylake_baseline_catalog().disable("C6")
        assert "C6" not in [s.name for s in cat.enabled_idle_states]
        assert "C6" in cat  # still defined

    def test_enable_restores(self):
        cat = skylake_baseline_catalog().disable("C6")
        cat.enable("C6")
        assert cat.is_enabled("C6")

    def test_cannot_disable_everything(self):
        cat = skylake_baseline_catalog()
        with pytest.raises(CStateError):
            cat.disable("C1", "C1E", "C6")

    def test_disable_unknown_rejected(self):
        with pytest.raises(CStateError):
            skylake_baseline_catalog().disable("C9")

    def test_deepest_respects_disable(self):
        cat = skylake_baseline_catalog().disable("C6")
        assert cat.deepest().name == "C1E"


class TestGovernorSelect:
    def test_short_idle_picks_c1(self):
        cat = skylake_baseline_catalog()
        assert cat.select(predicted_idle=3 * US).name == "C1"

    def test_medium_idle_picks_c1e(self):
        cat = skylake_baseline_catalog()
        assert cat.select(predicted_idle=50 * US).name == "C1E"

    def test_long_idle_picks_c6(self):
        cat = skylake_baseline_catalog()
        assert cat.select(predicted_idle=1e-3).name == "C6"

    def test_tiny_idle_falls_back_to_shallowest(self):
        cat = skylake_baseline_catalog()
        assert cat.select(predicted_idle=0.0).name == "C1"

    def test_latency_limit_filters_deep_states(self):
        cat = skylake_baseline_catalog()
        chosen = cat.select(predicted_idle=1e-3, latency_limit=10 * US)
        assert chosen.name == "C1E"  # C6's 46 us exit exceeds the limit

    def test_select_respects_disable(self):
        cat = skylake_baseline_catalog().disable("C6")
        assert cat.select(predicted_idle=1.0).name == "C1E"

    def test_negative_prediction_rejected(self):
        with pytest.raises(CStateError):
            skylake_baseline_catalog().select(-1.0)

    @given(idle=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100)
    def test_selected_target_residency_fits_prediction(self, idle):
        cat = skylake_baseline_catalog()
        chosen = cat.select(idle)
        if chosen.name != cat.shallowest().name:
            assert chosen.target_residency <= idle

    @given(idle=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100)
    def test_deeper_prediction_never_picks_shallower(self, idle):
        cat = skylake_baseline_catalog()
        a = cat.select(idle)
        b = cat.select(idle * 2)
        assert b.depth >= a.depth


class TestCatalogConstruction:
    def test_active_must_be_c0(self):
        with pytest.raises(CStateError):
            CStateCatalog(active=make_c1(), idle_states=[make_c6()])

    def test_needs_idle_states(self):
        from repro.core.cstates import _c0

        with pytest.raises(CStateError):
            CStateCatalog(active=_c0(FrequencyPoint.P1, 4.0), idle_states=[])

    def test_duplicate_idle_states_rejected(self):
        from repro.core.cstates import _c0

        with pytest.raises(CStateError):
            CStateCatalog(
                active=_c0(FrequencyPoint.P1, 4.0),
                idle_states=[make_c1(), make_c1()],
            )


class TestFrequencyPoints:
    def test_p1_is_2_2ghz(self):
        assert FrequencyPoint.P1.frequency_hz == pytest.approx(2.2e9)

    def test_pn_is_800mhz(self):
        assert FrequencyPoint.PN.frequency_hz == pytest.approx(0.8e9)

    def test_turbo_is_3ghz(self):
        assert FrequencyPoint.TURBO.frequency_hz == pytest.approx(3.0e9)

    def test_active_power_ordering(self):
        assert (
            active_power(FrequencyPoint.PN)
            < active_power(FrequencyPoint.P1)
            < active_power(FrequencyPoint.TURBO)
        )
