"""Tests for the simulation-driven experiments (Figs 8-13, Table 5).

These use reduced rate grids and short horizons so the whole file runs in
tens of seconds while still asserting the paper's qualitative claims.
"""

import pytest

from repro.experiments import fig8, fig9, fig10, fig11, fig12, fig13, table5
from repro.experiments.common import clear_cache

#: A reduced Memcached grid: low / mid / high load.
RATES = [10, 100, 400]
HORIZON = 0.1
SEED = 42


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield


class TestFig8:
    @pytest.fixture(scope="class")
    def points(self):
        return fig8.run(rates_kqps=RATES, horizon=HORIZON, seed=SEED,
                        with_scalability=True)

    def test_one_point_per_rate(self, points):
        assert [p.qps for p in points] == [r * 1000 for r in RATES]

    def test_residency_sums_to_one(self, points):
        for p in points:
            assert sum(p.residency.values()) == pytest.approx(1.0, abs=1e-6)

    def test_utilization_grows_with_load(self, points):
        c0 = [p.residency.get("C0", 0.0) for p in points]
        assert c0 == sorted(c0)

    def test_power_savings_decline_with_load(self, points):
        # Fig 8b shape: biggest savings at low load.
        assert points[0].power_reduction > points[-1].power_reduction

    def test_savings_band(self, points):
        # Paper: up to ~38-50% at low load, ~10-15% at 400-500K.
        assert 0.30 <= points[0].power_reduction <= 0.60
        assert 0.08 <= points[-1].power_reduction <= 0.30

    def test_latency_degradation_small(self, points):
        # Paper: < 1.3% tail impact.
        for p in points:
            assert abs(p.avg_latency_degradation) < 0.06
            assert abs(p.tail_latency_degradation) < 0.08

    def test_worst_case_server_degradation_about_1pct(self, points):
        for p in points:
            assert p.worst_case_server_degradation < 0.02

    def test_e2e_degradation_negligible(self, points):
        # Network latency dominates: end-to-end impact ~0.1%.
        for p in points:
            assert p.worst_case_e2e_degradation < 0.005
            assert p.expected_e2e_degradation <= p.worst_case_e2e_degradation + 1e-9

    def test_expected_below_worst_case(self, points):
        for p in points:
            assert p.expected_server_degradation <= p.worst_case_server_degradation + 1e-9

    def test_scalability_reasonable(self, points):
        for p in points:
            assert 0.0 <= p.scalability <= 1.0

    def test_average_power_reduction_band(self, points):
        avg = fig8.average_power_reduction(points)
        assert 0.15 <= avg <= 0.50


class TestFig9:
    @pytest.fixture(scope="class")
    def sweep(self):
        return fig9.run(rates_kqps=RATES, horizon=HORIZON, seed=SEED)

    def test_all_configs_present(self, sweep):
        assert set(sweep.results) == set(fig9.TUNED_CONFIGS)

    def test_no_c1e_lowest_latency_at_low_load(self, sweep):
        # Sec 7.2: NT_No_C6_No_C1E has the lowest average latency.
        i = 0  # low load
        latencies = {
            c: sweep.results[c][i].avg_latency for c in fig9.TUNED_CONFIGS
        }
        assert latencies["NT_No_C6_No_C1E"] == min(latencies.values())

    def test_no_c1e_highest_power_at_low_load(self, sweep):
        i = 0
        powers = {c: sweep.results[c][i].avg_core_power for c in fig9.TUNED_CONFIGS}
        assert powers["NT_No_C6_No_C1E"] == max(powers.values())

    def test_disabling_c6_cuts_tail_at_low_load(self, sweep):
        base = sweep.results["NT_Baseline"][0]
        no_c6 = sweep.results["NT_No_C6"][0]
        assert no_c6.tail_latency < base.tail_latency

    def test_package_power_grows_with_load(self, sweep):
        for config in fig9.TUNED_CONFIGS:
            powers = [r.package_power for r in sweep.results[config]]
            assert powers == sorted(powers)

    def test_no_c6_has_no_c6_residency(self, sweep):
        for r in sweep.results["NT_No_C6"]:
            assert r.residency_of("C6") == 0.0


class TestFig10:
    @pytest.fixture(scope="class")
    def points(self):
        return fig10.run(rates_kqps=RATES, horizon=HORIZON, seed=SEED)

    def test_aw_saves_power_against_all_configs(self, points):
        for p in points:
            for config in fig9.TUNED_CONFIGS:
                assert p.power_reduction[config] > 0.0

    def test_peak_savings_band(self, points):
        # Paper: up to ~71%.
        peak = fig10.peak_power_reduction(points)
        assert 0.55 <= peak <= 0.85

    def test_largest_savings_vs_no_c1e_config_at_low_load(self, points):
        p = points[0]
        assert (
            p.power_reduction["NT_No_C6_No_C1E"]
            >= p.power_reduction["NT_Baseline"]
        )

    def test_aw_latency_close_to_best_tuned_config(self, points):
        # Paper: < 1% degradation vs NT_No_C6_No_C1E (e2e basis).
        for p in points:
            assert p.avg_latency_reduction["NT_No_C6_No_C1E"] > -0.01

    def test_aw_beats_baseline_latency_at_low_load(self, points):
        # Paper: up to 5%/26% avg/tail reduction vs NT_Baseline.
        p = points[0]
        assert p.avg_latency_reduction["NT_Baseline"] > 0.0
        assert p.tail_latency_reduction["NT_Baseline"] > 0.0

    def test_average_reduction_ordering(self, points):
        avgs = fig10.average_power_reduction(points)
        assert avgs["NT_No_C6_No_C1E"] >= avgs["NT_Baseline"]


class TestFig11:
    #: Fig 11 needs enough simulated time at high load for the turbo tank
    #: (2 J) to actually deplete, so it runs its own grid.
    FIG11_RATES = [10, 300, 500]
    FIG11_HORIZON = 0.4

    @pytest.fixture(scope="class")
    def sweep(self):
        return fig11.run(
            rates_kqps=self.FIG11_RATES, horizon=self.FIG11_HORIZON, seed=SEED
        )

    def test_all_six_configs(self, sweep):
        assert set(sweep.results) == set(
            fig11.NO_TURBO_CONFIGS + fig11.TURBO_CONFIGS
        )

    def test_disabling_c1e_helps_no_turbo_latency(self, sweep):
        # Observation 1: NT_No_C6_No_C1E <= NT_No_C6 on avg latency.
        a = sweep.avg_latency_us("NT_No_C6_No_C1E")
        b = sweep.avg_latency_us("NT_No_C6")
        assert all(x <= y + 0.5 for x, y in zip(a, b))

    def test_c6a_sustains_turbo_longer(self, sweep):
        # The Sec 7.3 mechanism: C6A idles cheap, so turbo headroom lasts.
        c6a = sweep.turbo_grant_rates("T_C6A_No_C6_No_C1E")
        c1 = sweep.turbo_grant_rates("T_No_C6_No_C1E")
        assert all(a >= b - 1e-9 for a, b in zip(c6a, c1))
        assert c6a[-1] > c1[-1]  # strictly better at high load

    def test_c6a_turbo_best_avg_latency_at_high_load(self, sweep):
        i = len(self.FIG11_RATES) - 1
        c6a = sweep.avg_latency_us("T_C6A_No_C6_No_C1E")[i]
        others = [
            sweep.avg_latency_us(c)[i]
            for c in ("T_No_C6", "T_No_C6_No_C1E")
        ]
        assert c6a <= min(others) + 0.1

    def test_nt_grant_rates_zero(self, sweep):
        for config in fig11.NO_TURBO_CONFIGS:
            assert all(g == 0.0 for g in sweep.turbo_grant_rates(config))


class TestFig12MySQL:
    @pytest.fixture(scope="class")
    def points(self):
        return fig12.run(horizon=1.0, seed=SEED)

    def test_baseline_c6_heavy(self, points):
        # Sec 7.4: >= 40% C6 residency at all rates.
        for p in points:
            assert p.baseline_residency.get("C6", 0.0) >= 0.4

    def test_no_c6_moves_residency_to_c1(self, points):
        for p in points:
            assert p.no_c6_residency.get("C6", 0.0) == 0.0
            assert p.no_c6_residency.get("C1", 0.0) > 0.5

    def test_disabling_c6_helps_latency_at_low_mid(self, points):
        by_label = {p.label: p for p in points}
        assert by_label["low"].avg_latency_reduction > 0.0
        assert by_label["mid"].avg_latency_reduction > 0.0

    def test_aw_power_reduction_band(self, points):
        # Paper: 22-56% across rates; ours runs somewhat higher.
        for p in points:
            assert 0.2 <= p.aw_power_reduction <= 0.85


class TestFig13Kafka:
    @pytest.fixture(scope="class")
    def points(self):
        return fig13.run(horizon=0.5, seed=SEED)

    def test_low_rate_c6_heavy(self, points):
        by_label = {p.label: p for p in points}
        assert by_label["low"].baseline_residency.get("C6", 0.0) > 0.6

    def test_high_rate_no_c6(self, points):
        by_label = {p.label: p for p in points}
        assert by_label["high"].baseline_residency.get("C6", 0.0) < 0.1

    def test_high_rate_no_latency_gain_from_disabling_c6(self, points):
        by_label = {p.label: p for p in points}
        assert abs(by_label["high"].avg_latency_reduction) < 0.02

    def test_aw_saves_at_both_rates(self, points):
        for p in points:
            assert p.aw_power_reduction > 0.3


class TestTable5:
    def test_savings_positive_everywhere(self):
        savings = table5.run(rates_kqps=RATES, horizon=HORIZON, seed=SEED)
        assert all(v > 0 for v in savings.values())

    def test_band_order_of_magnitude(self):
        # Paper: $0.33-0.59M; our simulator's deltas run ~2x higher but
        # must stay in the same order of magnitude.
        savings = table5.run(rates_kqps=RATES, horizon=HORIZON, seed=SEED)
        for value in savings.values():
            assert 0.1 <= value <= 3.0
