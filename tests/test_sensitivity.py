"""Tests for the sensitivity (tornado) analysis."""

import pytest

from repro.analytical.sensitivity import (
    DEFAULT_RESIDENCY,
    residency_sensitivity,
    tornado,
)
from repro.errors import ConfigurationError


class TestTornado:
    @pytest.fixture(scope="class")
    def entries(self):
        return tornado()

    def test_five_parameters(self, entries):
        assert len(entries) == 5

    def test_sorted_by_swing(self, entries):
        swings = [e.swing for e in entries]
        assert swings == sorted(swings, reverse=True)

    def test_nominal_savings_band(self, entries):
        # ~50% at the 80%-C1E operating point.
        assert 0.4 <= entries[0].savings_nominal <= 0.6

    def test_conclusion_robust_to_every_perturbation(self, entries):
        # The paper-supporting claim: savings stay double-digit.
        for entry in entries:
            assert entry.savings_low > 0.10
            assert entry.savings_high > 0.10

    def test_swings_are_small(self, entries):
        # No model constant moves savings by more than ~6 points at 25%.
        for entry in entries:
            assert entry.swing < 0.08

    def test_fivr_terms_most_influential(self, entries):
        top_two = {entries[0].parameter, entries[1].parameter}
        assert top_two == {"fivr_efficiency", "fivr_static_loss"}

    def test_more_static_loss_less_savings(self, entries):
        static = next(e for e in entries if e.parameter == "fivr_static_loss")
        assert static.savings_high < static.savings_low

    def test_bad_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            tornado(relative_delta=0.0)
        with pytest.raises(ConfigurationError):
            tornado(relative_delta=1.5)


class TestResidencyLever:
    def test_workload_is_the_biggest_lever(self):
        # Shifting idle time to busy time swings savings far more than
        # any model constant — the Fig 8b load dependence.
        lever = residency_sensitivity()
        model_swings = [e.swing for e in tornado()]
        assert lever.swing > max(model_swings)

    def test_busier_means_less_savings(self):
        lever = residency_sensitivity()
        assert lever.savings_low < lever.savings_nominal

    def test_default_residency_sums_to_one(self):
        assert sum(DEFAULT_RESIDENCY.values()) == pytest.approx(1.0)


class TestExperimentModule:
    def test_run_appends_residency_lever(self):
        from repro.experiments import sensitivity

        entries = sensitivity.run()
        assert entries[-1].parameter == "c1e_residency_shift"

    def test_main_prints(self, capsys):
        from repro.experiments import sensitivity

        sensitivity.main()
        out = capsys.readouterr().out
        assert "Sensitivity" in out
        assert "swing" in out
