"""Tests for sharded cluster execution (repro.cluster.sharding).

The contract under test: for stateless balancers the partitioned
per-node simulation is *the same computation* as the sharded one — S=1
equals the unsharded run bit-identically, any S equals S=1, and the
merge is invariant to shard completion order. Stateful balancers must
refuse to shard with the documented, actionable error.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from golden_specs import digest_result  # noqa: E402

from repro.cluster.sharding import (
    check_shardable,
    execute_partitioned,
    is_shardable,
    merge_node_results,
    run_shard,
    run_sharded,
    shard_ranges,
)
from repro.errors import ConfigurationError, ShardingError
from repro.sweep import (
    FailurePolicy,
    PointFailure,
    ScenarioSpec,
    ShardedExecutor,
    SweepRunner,
)


def _cluster_spec(**overrides):
    base = dict(
        workload="memcached", config="baseline", qps=40_000,
        nodes=4, cores=2, horizon=0.02, seed=42, balancer="random",
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestShardRanges:
    def test_even_split(self):
        assert shard_ranges(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_spread_over_leading_shards(self):
        assert shard_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_shards_clamped_to_nodes(self):
        assert shard_ranges(3, 8) == [(0, 1), (1, 2), (2, 3)]

    def test_ranges_cover_exactly(self):
        for nodes in (1, 5, 17, 100):
            for shards in (1, 2, 3, 7, 100):
                ranges = shard_ranges(nodes, shards)
                assert ranges[0][0] == 0
                assert ranges[-1][1] == nodes
                for (_, a_hi), (b_lo, _) in zip(ranges, ranges[1:]):
                    assert a_hi == b_lo
                assert all(hi > lo for lo, hi in ranges)

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            shard_ranges(0, 1)
        with pytest.raises(ConfigurationError):
            shard_ranges(4, 0)


class TestShardability:
    def test_stateless_balancers_shardable(self):
        assert is_shardable(_cluster_spec(balancer="random"))
        assert is_shardable(_cluster_spec(balancer="round_robin"))

    @pytest.mark.parametrize("balancer", ["jsq", "power_of_two"])
    def test_stateful_balancers_refused(self, balancer):
        spec = _cluster_spec(balancer=balancer)
        assert not is_shardable(spec)
        with pytest.raises(ShardingError, match=balancer):
            check_shardable(spec)

    def test_fanout_refused(self):
        spec = _cluster_spec(fanout=2)
        assert not is_shardable(spec)
        with pytest.raises(ShardingError, match="fanout"):
            check_shardable(spec)

    def test_hedging_refused(self):
        spec = _cluster_spec(hedge_ms=1.0)
        assert not is_shardable(spec)
        with pytest.raises(ShardingError, match="[Hh]edge"):
            check_shardable(spec)

    def test_single_node_refused(self):
        spec = _cluster_spec(nodes=1)
        assert not is_shardable(spec)
        with pytest.raises(ShardingError, match="single-node"):
            check_shardable(spec)

    def test_error_is_actionable(self):
        # The message must name the spec and the ways out.
        with pytest.raises(ShardingError) as excinfo:
            check_shardable(_cluster_spec(balancer="jsq"))
        message = str(excinfo.value)
        assert "jsq" in message
        assert "stateless" in message
        assert "random" in message and "round_robin" in message

    def test_run_sharded_refuses_unshardable(self):
        with pytest.raises(ShardingError):
            run_sharded(_cluster_spec(balancer="power_of_two"), shards=2)

    def test_uses_partitioned_arrivals_property(self):
        assert _cluster_spec().uses_partitioned_arrivals
        assert not _cluster_spec(balancer="jsq").uses_partitioned_arrivals
        single = ScenarioSpec(
            workload="memcached", config="baseline", qps=20_000,
            horizon=0.02, seed=7,
        )
        assert not single.uses_partitioned_arrivals


class TestShardDeterminism:
    def test_execute_routes_through_partitioned_path(self):
        spec = _cluster_spec()
        assert digest_result(spec.execute()) == digest_result(
            execute_partitioned(spec)
        )

    def test_s1_equals_unsharded_bit_identically(self):
        spec = _cluster_spec()
        assert digest_result(run_sharded(spec, shards=1)) == digest_result(
            spec.execute()
        )

    def test_s4_pool_equals_unsharded_bit_identically(self):
        spec = _cluster_spec()
        assert digest_result(run_sharded(spec, shards=4)) == digest_result(
            spec.execute()
        )

    def test_odd_shard_count_identical(self):
        spec = _cluster_spec(nodes=5, qps=50_000)
        assert digest_result(run_sharded(spec, shards=3)) == digest_result(
            execute_partitioned(spec)
        )

    def test_round_robin_thinned_identical_across_shard_counts(self):
        spec = _cluster_spec(balancer="round_robin")
        reference = digest_result(execute_partitioned(spec))
        assert digest_result(run_sharded(spec, shards=2)) == reference
        assert digest_result(spec.execute()) == reference

    def test_merge_invariant_to_completion_order(self):
        # Compute the two shards' node results in *reverse* order — as if
        # the second shard finished first — and reassemble: the merged
        # result must still be bit-identical (node order, not completion
        # order, fixes the summation order).
        spec = _cluster_spec()
        high = run_shard(spec, 2, 4)
        low = run_shard(spec, 0, 2)
        merged = merge_node_results(spec, low + high)
        assert digest_result(merged) == digest_result(execute_partitioned(spec))

    def test_sketch_mode_sharded_identical(self):
        spec = _cluster_spec(sketch_error=0.01)
        reference = execute_partitioned(spec)
        sharded = run_sharded(spec, shards=4)
        assert digest_result(sharded) == digest_result(reference)
        assert sharded.server_latency.sketch_error == 0.01

    def test_sketch_percentiles_within_bound_of_exact(self):
        exact = execute_partitioned(_cluster_spec())
        sketched = execute_partitioned(_cluster_spec(sketch_error=0.01))
        assert sketched.completed == exact.completed
        for p in (50, 99):
            assert sketched.server_latency.percentile(p) == pytest.approx(
                exact.server_latency.percentile(p), rel=0.02
            )


class TestMergeSemantics:
    def test_scalar_aggregation_formulas(self):
        spec = _cluster_spec()
        per_node = run_shard(spec, 0, spec.nodes)
        merged = merge_node_results(spec, per_node)
        k = spec.nodes
        assert merged.completed == sum(r.completed for r in per_node)
        assert merged.cores == spec.nodes * spec.cores
        assert merged.package_power == sum(r.package_power for r in per_node)
        assert merged.avg_core_power == (
            sum(r.avg_core_power for r in per_node) / k
        )
        assert merged.events_processed == sum(
            r.events_processed for r in per_node
        )
        assert merged.peak_pending_events == max(
            r.peak_pending_events for r in per_node
        )
        assert merged.server_latency.count == merged.completed
        assert merged.hedges_issued == 0

    def test_node_detail_shape(self):
        from repro.cluster.cluster import NODE_SEED_STRIDE

        spec = _cluster_spec()
        merged = execute_partitioned(spec)
        assert merged.node_detail is not None
        assert len(merged.node_detail) == spec.nodes
        for i, detail in enumerate(merged.node_detail):
            assert detail["node"] == i
            assert detail["seed"] == spec.seed + NODE_SEED_STRIDE * i
            assert detail["completed"] > 0
            assert detail["p99_leaf_latency"] > 0

    def test_wrong_node_count_rejected(self):
        spec = _cluster_spec()
        per_node = run_shard(spec, 0, 2)
        with pytest.raises(ConfigurationError):
            merge_node_results(spec, per_node)

    def test_invalid_shard_range_rejected(self):
        spec = _cluster_spec()
        for lo, hi in ((2, 2), (-1, 2), (0, 5), (3, 1)):
            with pytest.raises(ConfigurationError):
                run_shard(spec, lo, hi)


class TestShardedExecutor:
    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedExecutor(0)
        with pytest.raises(ConfigurationError):
            ShardedExecutor(2, jobs=0)

    def test_shardable_point_matches_serial(self):
        spec = _cluster_spec()
        sharded = SweepRunner(executor=ShardedExecutor(2), cache={}).run(spec)
        serial = SweepRunner(cache={}).run(spec)
        assert digest_result(sharded) == digest_result(serial)

    def test_single_node_point_runs_inline(self):
        spec = ScenarioSpec(
            workload="memcached", config="baseline", qps=20_000,
            horizon=0.02, seed=7,
        )
        result = SweepRunner(executor=ShardedExecutor(4), cache={}).run(spec)
        assert result.completed > 0
        assert result.node_detail is None

    def test_stateful_balancer_raises_by_default(self):
        runner = SweepRunner(executor=ShardedExecutor(2), cache={})
        with pytest.raises(ShardingError):
            runner.run(_cluster_spec(balancer="jsq"))

    def test_stateful_balancer_recorded_under_record_policy(self):
        runner = SweepRunner(
            executor=ShardedExecutor(2, policy=FailurePolicy(mode="record")),
            cache={},
        )
        good, bad = _cluster_spec(), _cluster_spec(balancer="jsq")
        results = runner.run_many([good, bad])
        assert results[0].completed > 0
        assert isinstance(results[1], PointFailure)
        assert "cannot shard" in results[1].error
