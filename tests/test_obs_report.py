"""Figures and the self-contained HTML report."""

import json

import pytest

from repro.experiments.api import (
    ExperimentResult,
    FigureSeries,
    FigureSpec,
    all_experiments,
    generic_figures,
    get_experiment,
    run_experiments,
)
from repro.obs.figures import (
    matplotlib_available,
    render_figure,
    render_svg,
    timeline_figures,
)
from repro.obs.report import build_report, load_bench_documents
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import ScenarioSpec


def _figure(**overrides):
    base = dict(
        id="t:demo", title="p99 vs qps", x_label="qps", y_label="seconds",
        series=(
            FigureSeries(label="baseline", x=(10.0, 20.0), y=(0.001, 0.004)),
            FigureSeries(label="AW", x=(10.0, 20.0), y=(0.002, 0.005)),
        ),
    )
    base.update(overrides)
    return FigureSpec(**base)


class TestGenericFigures:
    def test_qps_metric_lines_grouped_by_config(self):
        result = ExperimentResult(
            experiment_id="demo", title="demo", artifact="Figure X",
            records=[
                {"config": "baseline", "qps": 10_000, "p99_latency": 1e-3},
                {"config": "baseline", "qps": 20_000, "p99_latency": 2e-3},
                {"config": "AW", "qps": 10_000, "p99_latency": 3e-3},
                {"config": "AW", "qps": 20_000, "p99_latency": 4e-3},
            ],
        )
        figures = generic_figures(result)
        assert figures
        labels = {s.label for s in figures[0].series}
        assert labels == {"baseline", "AW"}

    def test_every_registered_experiment_declares_figures(self):
        # Static check only: figures() must exist and be callable with a
        # records-free result without crashing (the record-count bar).
        for experiment in all_experiments():
            result = ExperimentResult(
                experiment_id=experiment.id, title=experiment.title,
                artifact=experiment.artifact, records=[{"value": "static"}],
            )
            figures = experiment.figures(result)
            assert len(figures) >= 1, experiment.id


class TestSvgRenderer:
    def test_line_figure_renders_svg(self):
        svg = render_svg(_figure())
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "polyline" in svg
        assert "p99 vs qps" in svg
        assert "baseline" in svg and "AW" in svg  # legend

    def test_bar_figure_renders_rects(self):
        svg = render_svg(_figure(kind="bar"))
        assert "<rect" in svg and "polyline" not in svg

    def test_empty_figure_safe(self):
        svg = render_svg(_figure(series=()))
        assert "no data" in svg

    def test_flat_and_log_scales_stay_finite(self):
        flat = _figure(series=(
            FigureSeries(label="v", x=(1.0, 2.0), y=(5.0, 5.0)),
        ))
        assert "NaN" not in render_svg(flat) and "inf" not in render_svg(flat)
        log = _figure(log_y=True, series=(
            FigureSeries(label="v", x=(1.0, 2.0), y=(1.0, 1000.0)),
        ))
        assert "NaN" not in render_svg(log)

    def test_titles_are_escaped(self):
        svg = render_svg(_figure(title='<script>alert("x")</script>'))
        assert "<script>" not in svg

    def test_render_figure_uses_svg_without_matplotlib(self):
        rendered = render_figure(_figure())
        if matplotlib_available():
            assert rendered.startswith("<img")
        else:
            assert rendered.startswith("<svg")


class TestTimelineFigures:
    def test_power_cstate_and_load_plots(self):
        spec = ScenarioSpec(
            "memcached", "baseline", qps=60_000, horizon=0.05, seed=42,
            telemetry_hz=100,
        )
        figures = timeline_figures(spec.execute().timeline)
        ids = {f.id for f in figures}
        assert {"timeline:power", "timeline:cstates", "timeline:load"} <= ids
        for figure in figures:
            assert render_svg(figure).startswith("<svg")

    def test_no_timeline_no_figures(self):
        assert timeline_figures(None) == []
        assert timeline_figures({}) == []


class TestReportPage:
    @pytest.fixture(scope="class")
    def page(self, tmp_path_factory):
        experiments = [get_experiment("table1"), get_experiment("fig8").quick()]
        runner = SweepRunner(cache={})
        results = run_experiments(experiments, runner=runner)
        spec = ScenarioSpec(
            "memcached", "baseline", qps=60_000, horizon=0.05, seed=42,
            telemetry_hz=50,
        )
        manifest_path = tmp_path_factory.mktemp("obs") / "runs.jsonl"
        manifest_path.write_text(json.dumps({
            "event": "finished", "t": 0.1, "wall": 1.0, "worker": "main",
            "wall_s": 0.5, "events_per_s": 1000.0,
        }) + "\n")
        return build_report(
            experiments, results,
            timeline=spec.execute().timeline, timeline_label="demo run",
            manifest_path=str(manifest_path), root=None,
            subtitle="test page",
        )

    def test_page_is_self_contained_html(self, page):
        assert page.startswith("<!DOCTYPE html>")
        # No external fetches: the only allowed data is inline markup or
        # data: URIs. (The SVG xmlns is a namespace name, not a fetch.)
        assert 'src="http' not in page
        assert 'href="http' not in page
        assert "<link" not in page
        assert "<script" not in page

    def test_each_experiment_has_a_section_with_figures(self, page):
        for experiment_id in ("table1", "fig8"):
            section = page.split(f'<h3 id="{experiment_id}"', 1)[1]
            body = section.split("<h3", 1)[0].split("<h2", 1)[0]
            assert '<svg class="figure"' in body or "<img" in body, experiment_id

    def test_telemetry_and_manifest_sections_present(self, page):
        assert "Telemetry timeline" in page
        assert "Sweep manifest" in page
        assert "finished" in page


class TestBenchTrend:
    def test_loads_committed_baseline(self):
        from repro.bench import find_repo_root

        docs = load_bench_documents(find_repo_root())
        assert docs
        label, results = docs[0]
        assert label == "baseline"
        assert "test_bench_server_node_100k_qps" in results
        assert "test_bench_obs_probes_off" in results

    def test_bench_section_in_report_with_root(self):
        from repro.bench import find_repo_root

        page = build_report([], {}, root=find_repo_root())
        assert "Benchmark trend" in page
        assert "test_bench_server_node_100k_qps" in page


class TestFleetReport:
    """``repro report --manifest <dir>`` renders the whole worker fleet."""

    @pytest.fixture()
    def manifest_dir(self, tmp_path):
        from repro.obs.manifest import RunManifest

        root = tmp_path / "manifests"
        root.mkdir()
        with RunManifest(str(root / "w1.jsonl"), worker="w1") as m:
            m.emit("worker_start", pid=11)
            m.emit("claimed", job="aaa")
            m.emit("finished", job="aaa", wall_s=0.2)
            m.emit("heartbeat", job="aaa", held=True)
            m.emit("worker_exit", claims=1, settled=1)
        with RunManifest(str(root / "w2.jsonl"), worker="w2") as m:
            m.emit("worker_start", pid=22)
            m.emit("claimed", job="bbb")
        # w2 was SIGKILLed mid-write: torn final line.
        with open(root / "w2.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"event": "finis')
        return root

    def test_summarize_manifest_dir_merges_workers(self, manifest_dir):
        from repro.obs.report import summarize_manifest_dir

        summary = summarize_manifest_dir(str(manifest_dir))
        assert [w["worker"] for w in summary["workers"]] == ["w1", "w2"]
        assert summary["counts"]["claimed"] == 2
        assert summary["counts"]["finished"] == 1
        torn = {w["worker"]: w["torn_tail"] for w in summary["workers"]}
        assert torn == {"w1": False, "w2": True}

    def test_build_report_renders_fleet_for_directory(self, manifest_dir):
        page = build_report(
            [], {}, manifest_path=str(manifest_dir), subtitle="fleet test",
        )
        assert "Distributed fleet" in page
        assert "w1" in page and "w2" in page
        assert "heartbeat" in page
        assert "torn" in page.lower()  # the dead worker is flagged
