"""Tests for online statistics: OnlineStats, PercentileTracker, Histogram."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.simkit import Histogram, OnlineStats, PercentileTracker
from repro.simkit.stats import weighted_mean


class TestOnlineStats:
    def test_empty_mean_is_zero(self):
        assert OnlineStats().mean == 0.0

    def test_mean(self):
        s = OnlineStats()
        s.add_many([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)

    def test_variance(self):
        s = OnlineStats()
        s.add_many([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert s.variance == pytest.approx(32.0 / 7.0)

    def test_variance_single_sample_zero(self):
        s = OnlineStats()
        s.add(1.0)
        assert s.variance == 0.0

    def test_min_max(self):
        s = OnlineStats()
        s.add_many([3.0, -1.0, 7.0])
        assert s.minimum == -1.0
        assert s.maximum == 7.0

    def test_min_on_empty_raises(self):
        with pytest.raises(ValueError):
            OnlineStats().minimum

    def test_count(self):
        s = OnlineStats()
        s.add_many([1.0] * 5)
        assert s.count == 5

    def test_merge_equivalent_to_combined_stream(self):
        a, b, combined = OnlineStats(), OnlineStats(), OnlineStats()
        xs = [1.0, 5.0, 2.5]
        ys = [9.0, -3.0, 4.0, 0.5]
        a.add_many(xs)
        b.add_many(ys)
        combined.add_many(xs + ys)
        merged = a.merge(b)
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)
        assert merged.count == combined.count
        assert merged.minimum == combined.minimum

    def test_merge_with_empty(self):
        a = OnlineStats()
        a.add_many([1.0, 2.0])
        merged = a.merge(OnlineStats())
        assert merged.mean == pytest.approx(1.5)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    @settings(max_examples=50)
    def test_welford_matches_naive(self, values):
        s = OnlineStats()
        s.add_many(values)
        naive_mean = sum(values) / len(values)
        naive_var = sum((v - naive_mean) ** 2 for v in values) / (len(values) - 1)
        assert s.mean == pytest.approx(naive_mean, abs=1e-6)
        assert s.variance == pytest.approx(naive_var, rel=1e-6, abs=1e-6)


class TestPercentileTracker:
    def test_single_sample(self):
        t = PercentileTracker()
        t.add(5.0)
        assert t.percentile(50) == 5.0
        assert t.percentile(99) == 5.0

    def test_median_of_two(self):
        t = PercentileTracker()
        t.add_many([1.0, 3.0])
        assert t.p50 == pytest.approx(2.0)

    def test_p0_and_p100(self):
        t = PercentileTracker()
        t.add_many([4.0, 1.0, 9.0])
        assert t.percentile(0) == 1.0
        assert t.percentile(100) == 9.0

    def test_p99_of_uniform_sequence(self):
        t = PercentileTracker()
        t.add_many(float(i) for i in range(101))
        assert t.p99 == pytest.approx(99.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            PercentileTracker().percentile(50)

    def test_out_of_range_rejected(self):
        t = PercentileTracker()
        t.add(1.0)
        with pytest.raises(ConfigurationError):
            t.percentile(101)
        with pytest.raises(ConfigurationError):
            t.percentile(-1)

    def test_mean(self):
        t = PercentileTracker()
        t.add_many([1.0, 2.0, 6.0])
        assert t.mean == pytest.approx(3.0)

    def test_mean_empty_is_zero(self):
        assert PercentileTracker().mean == 0.0

    def test_interleaved_add_and_query(self):
        t = PercentileTracker()
        t.add_many([3.0, 1.0])
        assert t.p50 == pytest.approx(2.0)
        t.add(2.0)
        assert t.p50 == pytest.approx(2.0)
        t.add_many([10.0, 20.0])
        assert t.percentile(100) == 20.0

    def test_fraction_above(self):
        t = PercentileTracker()
        t.add_many([1.0, 2.0, 3.0, 4.0])
        assert t.fraction_above(2.0) == pytest.approx(0.5)
        assert t.fraction_above(0.0) == 1.0
        assert t.fraction_above(10.0) == 0.0

    def test_fraction_above_empty(self):
        assert PercentileTracker().fraction_above(1.0) == 0.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_percentiles_monotone(self, values):
        t = PercentileTracker()
        t.add_many(values)
        ps = [t.percentile(p) for p in (0, 25, 50, 75, 99, 100)]
        assert ps == sorted(ps)

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_percentile_within_range(self, values):
        t = PercentileTracker()
        t.add_many(values)
        assert min(values) <= t.p50 <= max(values)


class TestHistogram:
    def test_counts_land_in_bins(self):
        h = Histogram(0.0, 10.0, bins=10)
        h.add(0.5)
        h.add(5.5)
        h.add(9.5)
        assert h.counts[0] == 1
        assert h.counts[5] == 1
        assert h.counts[9] == 1

    def test_underflow_overflow(self):
        h = Histogram(0.0, 1.0, bins=2)
        h.add(-1.0)
        h.add(2.0)
        assert h.underflow == 1
        assert h.overflow == 1
        assert h.total == 2

    def test_upper_edge_is_overflow(self):
        h = Histogram(0.0, 1.0, bins=2)
        h.add(1.0)
        assert h.overflow == 1

    def test_bin_edges(self):
        h = Histogram(0.0, 1.0, bins=4)
        assert h.bin_edges() == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])

    def test_mode_bin(self):
        h = Histogram(0.0, 10.0, bins=10)
        for _ in range(3):
            h.add(4.5)
        h.add(1.5)
        assert h.mode_bin() == 4

    def test_mode_bin_empty(self):
        assert Histogram(0.0, 1.0, bins=2).mode_bin() is None

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram(0.0, 1.0, bins=0)
        with pytest.raises(ConfigurationError):
            Histogram(1.0, 0.0, bins=3)


class TestWeightedMean:
    def test_residency_weighted_power(self):
        # Eq. 2 example: 20% C0 at 4 W + 80% C1 at 1.44 W.
        assert weighted_mean([4.0, 1.44], [0.2, 0.8]) == pytest.approx(1.952)

    def test_uniform_weights(self):
        assert weighted_mean([1.0, 2.0, 3.0], [1, 1, 1]) == pytest.approx(2.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_zero_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_mean([1.0], [0.0])


class TestPercentileCaching:
    """The sorted-sample cache: one sort serves every percentile query."""

    def test_p999(self):
        tracker = PercentileTracker()
        tracker.add_many(float(i) for i in range(1, 1001))
        assert tracker.p999 == pytest.approx(999.001)

    def test_percentiles_batch(self):
        tracker = PercentileTracker()
        tracker.add_many([5.0, 1.0, 3.0, 2.0, 4.0])
        assert tracker.percentiles([0, 50, 100]) == [1.0, 3.0, 5.0]

    def test_single_sort_for_many_percentiles(self):
        class CountingList(list):
            sorts = 0

            def sort(self, *args, **kwargs):
                CountingList.sorts += 1
                super().sort(*args, **kwargs)

        tracker = PercentileTracker()
        tracker._samples = CountingList([3.0, 1.0, 2.0, 9.0, 5.0])
        tracker._dirty = True
        _ = tracker.p50, tracker.p95, tracker.p99, tracker.p999
        _ = tracker.percentiles([10, 20, 30, 40])
        assert CountingList.sorts == 1

    def test_add_invalidates_cache(self):
        class CountingList(list):
            sorts = 0

            def sort(self, *args, **kwargs):
                CountingList.sorts += 1
                super().sort(*args, **kwargs)

        tracker = PercentileTracker()
        tracker._samples = CountingList([2.0, 1.0])
        tracker._dirty = True
        assert tracker.p50 == pytest.approx(1.5)
        tracker.add(0.5)
        assert tracker.p50 == pytest.approx(1.0)
        assert CountingList.sorts == 2
