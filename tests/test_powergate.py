"""Tests for power gates and staggered wake-up (Fig 2, Sec 5.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PowerModelError
from repro.power import PowerGate, StaggeredWakeupController, ZonedPowerGating
from repro.power.powergate import (
    AVX_STAGGER_TIME,
    UFPG_TO_AVX_AREA_RATIO,
    make_ufpg_zones,
)
from repro.units import NS


class TestPowerGate:
    def test_in_rush_safe_when_small(self):
        assert PowerGate("z", relative_area=0.9).in_rush_safe()

    def test_in_rush_unsafe_when_large(self):
        assert not PowerGate("z", relative_area=4.5).in_rush_safe()

    def test_residual_leakage(self):
        g = PowerGate("z", relative_area=1.0, gate_effectiveness=0.95)
        assert g.residual_leakage(1.0) == pytest.approx(0.05)

    def test_invalid_area_rejected(self):
        with pytest.raises(PowerModelError):
            PowerGate("z", relative_area=0.0)

    def test_negative_leakage_rejected(self):
        with pytest.raises(PowerModelError):
            PowerGate("z", relative_area=1.0).residual_leakage(-1.0)


class TestStaggeredWakeup:
    def _controller(self, n=3, stagger=10 * NS):
        gates = [
            PowerGate(f"g{i}", relative_area=0.5, stagger_time=stagger)
            for i in range(n)
        ]
        return StaggeredWakeupController(gates, gated=True)

    def test_wake_latency_is_sum_of_windows(self):
        c = self._controller(n=4, stagger=10 * NS)
        assert c.wake_latency == pytest.approx(40 * NS)

    def test_wake_transitions_state(self):
        c = self._controller()
        latency = c.wake()
        assert latency > 0
        assert not c.gated
        assert c.wake_count == 1

    def test_wake_idempotent(self):
        c = self._controller()
        c.wake()
        assert c.wake() == 0.0
        assert c.wake_count == 1

    def test_sleep_is_single_window(self):
        c = self._controller(n=5, stagger=10 * NS)
        c.wake()
        assert c.sleep() == pytest.approx(10 * NS)
        assert c.gated

    def test_sleep_idempotent(self):
        c = self._controller()
        assert c.sleep() == 0.0  # already gated

    def test_empty_rejected(self):
        with pytest.raises(PowerModelError):
            StaggeredWakeupController([])

    def test_max_in_rush_area(self):
        c = self._controller()
        assert c.max_in_rush_area() == pytest.approx(0.5)


class TestUFPGZones:
    def test_five_zones_cover_total_area(self):
        zones = make_ufpg_zones()
        assert len(zones) == 5
        total = sum(z.relative_area for z in zones)
        assert total == pytest.approx(UFPG_TO_AVX_AREA_RATIO)

    def test_each_zone_within_in_rush_budget(self):
        # Sec 5.3: each of the 5 zones (0.9 AVX-equivalents) is smaller
        # than the proven AVX gate region.
        for zone in make_ufpg_zones():
            assert zone.in_rush_safe()

    def test_total_wake_under_70ns(self):
        # 4.5 x 15 ns = 67.5 ns (Sec 5.3).
        zones = make_ufpg_zones()
        total = sum(z.stagger_time for z in zones)
        assert total == pytest.approx(4.5 * AVX_STAGGER_TIME)
        assert total < 70 * NS

    def test_too_few_zones_rejected(self):
        # 4 zones of 1.125 AVX-equivalents each exceed the budget.
        with pytest.raises(PowerModelError):
            make_ufpg_zones(zones=4)

    def test_zero_zones_rejected(self):
        with pytest.raises(PowerModelError):
            make_ufpg_zones(zones=0)

    @given(zones=st.integers(min_value=5, max_value=50))
    @settings(max_examples=30)
    def test_more_zones_same_total_wake(self, zones):
        # Splitting finer keeps the total wake time constant (area-
        # proportional windows) while shrinking per-zone in-rush.
        made = make_ufpg_zones(zones=zones)
        total = sum(z.stagger_time for z in made)
        assert total == pytest.approx(4.5 * AVX_STAGGER_TIME)


class TestZonedPowerGating:
    def test_default_is_in_rush_safe(self):
        assert ZonedPowerGating().in_rush_safe

    def test_wake_latency_under_70ns(self):
        assert ZonedPowerGating().wake_latency < 70 * NS

    def test_wake_latency_scales_with_area(self):
        small = ZonedPowerGating(total_relative_area=2.0, zones=5)
        big = ZonedPowerGating(total_relative_area=4.5, zones=5)
        assert small.wake_latency < big.wake_latency
