"""Unit tests for the lease-based job queue (repro.distrib.queue)."""

import sqlite3

import pytest

from repro.distrib import chaos
from repro.distrib.queue import (
    BACKOFF_BASE_S,
    BACKOFF_CAP_S,
    DONE,
    FAILED,
    LEASED,
    PENDING,
    JobQueue,
    backoff_s,
    job_key,
)
from repro.errors import ConfigurationError
from repro.sweep.spec import ScenarioSpec


def _spec(**overrides):
    base = dict(
        workload="memcached", config="baseline", qps=20_000,
        horizon=0.02, seed=7,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _grid(n):
    return [_spec(seed=i) for i in range(n)]


@pytest.fixture
def queue(tmp_path):
    return JobQueue(str(tmp_path / "queue"))


class TestEnqueue:
    def test_one_row_per_novel_spec(self, queue):
        assert queue.enqueue(_grid(4)) == 4
        assert len(queue) == 4
        assert queue.counts() == {
            PENDING: 4, LEASED: 0, DONE: 0, FAILED: 0,
        }

    def test_idempotent_reenqueue(self, queue):
        specs = _grid(3)
        assert queue.enqueue(specs) == 3
        assert queue.enqueue(specs) == 0
        assert len(queue) == 3

    def test_reenqueue_does_not_reset_done_or_leased(self, queue):
        specs = _grid(2)
        queue.enqueue(specs)
        job = queue.claim("w1")
        queue.complete(job.key, "w1")
        leased = queue.claim("w1")
        queue.enqueue(specs)  # resume re-adopts, never resets
        states = queue.states()
        assert states[job.key] == DONE
        assert states[leased.key] == LEASED

    def test_job_key_is_stable_across_instances(self):
        assert job_key(_spec(seed=1)) == job_key(_spec(seed=1))
        assert job_key(_spec(seed=1)) != job_key(_spec(seed=2))


class TestClaim:
    def test_claim_leases_and_counts_the_attempt(self, queue):
        queue.enqueue(_grid(1))
        job = queue.claim("w1", lease_s=30, now=100.0)
        assert job is not None
        assert job.attempt == 1
        assert job.lease_expires == 130.0
        assert queue.counts()[LEASED] == 1
        # The spec payload round-trips.
        assert ScenarioSpec.from_dict(job.spec) == _spec(seed=0)

    def test_no_double_claim(self, queue):
        queue.enqueue(_grid(2))
        first = queue.claim("w1")
        second = queue.claim("w2")
        assert first.key != second.key
        assert queue.claim("w3") is None

    def test_claim_is_oldest_first_stable(self, queue):
        queue.enqueue(_grid(3))
        keys = [queue.jobs()[i].key for i in range(3)]
        claimed = [queue.claim("w1").key for _ in range(3)]
        assert claimed == keys

    def test_backoff_gate_defers_claims(self, queue):
        queue.enqueue(_grid(1))
        job = queue.claim("w1", now=100.0)
        assert queue.fail(job.key, "w1", "boom", retries=2, now=101.0) == "requeued"
        # Not claimable before the backoff gate, claimable after.
        assert queue.claim("w2", now=101.0) is None
        assert not queue.has_claimable(now=101.0)
        later = queue.claim("w2", now=101.0 + BACKOFF_CAP_S)
        assert later is not None
        assert later.attempt == 2

    def test_nonpositive_lease_rejected(self, queue):
        with pytest.raises(ConfigurationError):
            queue.claim("w1", lease_s=0)


class TestLeaseProtocol:
    def test_heartbeat_extends_only_the_owner(self, queue):
        queue.enqueue(_grid(1))
        job = queue.claim("w1", lease_s=30, now=100.0)
        assert queue.heartbeat(job.key, "w1", lease_s=30, now=110.0)
        assert not queue.heartbeat(job.key, "imposter", lease_s=30, now=110.0)
        view = queue.jobs()[0]
        assert view.lease_expires == 140.0

    def test_complete_settles_the_row(self, queue):
        queue.enqueue(_grid(1))
        job = queue.claim("w1")
        assert queue.complete(job.key, "w1")
        assert not queue.complete(job.key, "w1")  # idempotent: already done
        assert queue.counts()[DONE] == 1
        assert not queue.heartbeat(job.key, "w1")

    def test_release_refunds_the_attempt(self, queue):
        queue.enqueue(_grid(1))
        job = queue.claim("w1")
        assert queue.release(job.key, "w1")
        again = queue.claim("w2")
        assert again.key == job.key
        assert again.attempt == 1  # a SIGTERM hand-back is not a failure

    def test_fail_exhausted_retries_is_terminal_and_structured(self, queue):
        queue.enqueue(_grid(1))
        job = queue.claim("w1")
        assert queue.fail(job.key, "w1", "RuntimeError: kaboom", retries=0) == "failed"
        record = queue.failures()[job.key]
        assert record["kind"] == "error"
        assert record["attempts"] == 1
        assert "kaboom" in record["error"]

    def test_fail_after_lease_loss_reports_lost(self, queue):
        queue.enqueue(_grid(1))
        job = queue.claim("w1", lease_s=1, now=100.0)
        queue.recover_expired(retries=5, now=200.0)
        assert queue.fail(job.key, "w1", "late", retries=5) == "lost"


class TestRecovery:
    def test_lapsed_lease_requeues_with_backoff_and_blame(self, queue):
        queue.enqueue(_grid(1))
        job = queue.claim("w1", lease_s=1, now=100.0)
        report = queue.recover_expired(retries=3, now=102.0)
        assert report.requeued == [job.key]
        view = queue.jobs()[0]
        assert view.state == PENDING
        assert view.failed_workers == ("w1",)
        assert view.not_before > 102.0

    def test_unexpired_lease_left_alone(self, queue):
        queue.enqueue(_grid(1))
        queue.claim("w1", lease_s=100, now=100.0)
        report = queue.recover_expired(retries=3, now=101.0)
        assert report.total == 0
        assert queue.counts()[LEASED] == 1

    def test_retries_exhausted_is_terminal(self, queue):
        queue.enqueue(_grid(1))
        job = queue.claim("w1", lease_s=1, now=100.0)
        report = queue.recover_expired(retries=0, now=102.0)
        assert report.failed == [job.key]
        record = queue.failures()[job.key]
        assert record["kind"] == "lease_expired"
        assert record["workers"] == ["w1"]

    def test_poison_point_quarantined_after_k_distinct_workers(self, queue):
        queue.enqueue(_grid(1))
        now = 100.0
        for worker in ("w1", "w2", "w3"):
            job = queue.claim(worker, lease_s=1, now=now)
            assert job is not None, f"{worker} could not claim"
            now += 10.0
            report = queue.recover_expired(retries=99, poison_k=3, now=now)
            now += BACKOFF_CAP_S  # wait out the requeue backoff gate
        assert report.quarantined == [job.key]
        record = queue.failures()[job.key]
        assert record["kind"] == "poison"
        assert sorted(record["workers"]) == ["w1", "w2", "w3"]

    def test_same_worker_dying_repeatedly_is_not_poison(self, queue):
        queue.enqueue(_grid(1))
        now = 100.0
        for _ in range(4):
            job = queue.claim("w1", lease_s=1, now=now)
            now += 10.0
            report = queue.recover_expired(retries=99, poison_k=3, now=now)
            now += BACKOFF_CAP_S
        assert report.quarantined == []
        assert report.requeued == [job.key]


class TestFaults:
    def test_corrupt_row_fails_structured_and_claim_moves_on(self, queue):
        specs = _grid(2)
        queue.enqueue(specs)
        first_key = queue.jobs()[0].key
        assert chaos.corrupt_rows(queue, [first_key]) == 1
        job = queue.claim("w1")
        assert job is not None
        assert job.key != first_key  # the readable row was handed out
        record = queue.failures()[first_key]
        assert record["kind"] == "corrupt"

    def test_heal_restores_corrupt_rows(self, queue):
        specs = _grid(2)
        queue.enqueue(specs)
        first_key = queue.jobs()[0].key
        chaos.corrupt_rows(queue, [first_key])
        queue.claim("w1")  # trips over the corrupt row, quarantines it
        assert queue.heal(specs) == 1
        job = queue.claim("w2")
        assert job.key == first_key
        assert ScenarioSpec.from_dict(job.spec) in specs

    def test_heal_leaves_real_failures_terminal(self, queue):
        specs = _grid(1)
        queue.enqueue(specs)
        job = queue.claim("w1")
        queue.fail(job.key, "w1", "RuntimeError: kaboom", retries=0)
        assert queue.heal(specs) == 0
        assert queue.counts()[FAILED] == 1

    def test_dropped_rows_restored_by_reenqueue(self, queue):
        specs = _grid(3)
        queue.enqueue(specs)
        victim = queue.jobs()[1].key
        assert chaos.drop_rows(queue, [victim]) == 1
        assert len(queue) == 2
        assert queue.enqueue(specs) == 1  # only the dropped row comes back
        assert len(queue) == 3


class TestBackoff:
    def test_deterministic_per_key_and_attempt(self):
        assert backoff_s("k", 3, 0.0) == backoff_s("k", 3, 0.0)
        # Once the jitter window opens (attempt > 1), keys decorrelate.
        assert backoff_s("k", 3, 0.0) != backoff_s("k2", 3, 0.0)

    def test_first_retry_is_the_exponential_floor(self):
        assert backoff_s("any-key", 1, 0.0) == BACKOFF_BASE_S

    def test_bounded_by_base_and_cap(self):
        previous = 0.0
        for attempt in range(1, 12):
            delay = backoff_s("key", attempt, previous)
            assert BACKOFF_BASE_S <= delay <= BACKOFF_CAP_S
            previous = delay

    def test_decorrelated_growth_window(self):
        # With a previous delay, the draw lives in [base, 3 * previous].
        delay = backoff_s("key", 5, 2.0)
        assert BACKOFF_BASE_S <= delay <= 6.0


class TestDrainState:
    def test_drained_only_when_no_work_and_no_live_lease(self, queue):
        assert queue.is_drained()
        queue.enqueue(_grid(1))
        assert not queue.is_drained()
        job = queue.claim("w1", lease_s=10, now=100.0)
        assert not queue.is_drained(now=105.0)  # live lease is work
        assert queue.is_drained(now=200.0)  # expired lease is not
        queue.complete(job.key, "w1")
        assert queue.is_drained()

    def test_wal_database_on_disk(self, queue, tmp_path):
        queue.enqueue(_grid(1))
        conn = sqlite3.connect(str(queue.path))
        try:
            (mode,) = conn.execute("PRAGMA journal_mode").fetchone()
        finally:
            conn.close()
        assert mode == "wal"

    def test_manifest_dir_lives_in_queue_root(self, queue):
        assert queue.manifest_dir().parent == queue.root
