"""Tests for the CPU core model: residency, transitions, energy."""

import pytest

from repro.core.cstates import FrequencyPoint, skylake_baseline_catalog
from repro.errors import SimulationError
from repro.uarch import Core


@pytest.fixture
def catalog():
    return skylake_baseline_catalog()


@pytest.fixture
def core(catalog):
    return Core(0, catalog)


class TestLifecycle:
    def test_starts_active_at_p1(self, core):
        assert core.is_active
        assert core.frequency is FrequencyPoint.P1
        assert core.current_power == pytest.approx(4.0)

    def test_enter_idle_changes_power(self, core, catalog):
        core.enter_idle(1.0, catalog.get("C1"))
        assert not core.is_active
        assert core.current_power == pytest.approx(1.44)

    def test_enter_c1e_moves_to_pn(self, core, catalog):
        core.enter_idle(1.0, catalog.get("C1E"))
        assert core.frequency is FrequencyPoint.PN

    def test_wake_returns_exit_latency(self, core, catalog):
        core.enter_idle(1.0, catalog.get("C6"))
        exit_latency = core.wake(2.0)
        assert exit_latency == pytest.approx(catalog.get("C6").exit_latency)
        assert core.is_active

    def test_wake_from_c1e_restores_p1(self, core, catalog):
        core.enter_idle(1.0, catalog.get("C1E"))
        core.wake(2.0)
        assert core.frequency is FrequencyPoint.P1

    def test_wake_with_turbo_grant(self, core, catalog):
        core.enter_idle(1.0, catalog.get("C1"))
        core.wake(2.0, frequency=FrequencyPoint.TURBO)
        assert core.frequency is FrequencyPoint.TURBO
        assert core.current_power > 4.0

    def test_double_idle_rejected(self, core, catalog):
        core.enter_idle(1.0, catalog.get("C1"))
        with pytest.raises(SimulationError):
            core.enter_idle(2.0, catalog.get("C6"))

    def test_wake_while_active_rejected(self, core):
        with pytest.raises(SimulationError):
            core.wake(1.0)

    def test_entering_active_state_rejected(self, core, catalog):
        with pytest.raises(SimulationError):
            core.enter_idle(1.0, catalog.active)

    def test_time_backwards_rejected(self, core, catalog):
        core.enter_idle(5.0, catalog.get("C1"))
        with pytest.raises(SimulationError):
            core.wake(4.0)


class TestResidencyAccounting:
    def test_residency_sums_to_wall_time(self, core, catalog):
        core.enter_idle(1.0, catalog.get("C1"))
        core.wake(3.0)
        core.enter_idle(4.0, catalog.get("C6"))
        stats = core.snapshot(10.0)
        assert sum(stats.residency_seconds.values()) == pytest.approx(10.0)
        assert stats.wall_seconds == pytest.approx(10.0)

    def test_residency_fractions(self, core, catalog):
        core.enter_idle(2.0, catalog.get("C1"))  # 2 s in C0
        core.wake(10.0)  # 8 s in C1
        stats = core.snapshot(10.0)
        assert stats.residency_fraction("C0") == pytest.approx(0.2)
        assert stats.residency_fraction("C1") == pytest.approx(0.8)

    def test_residency_table_sums_to_one(self, core, catalog):
        core.enter_idle(1.0, catalog.get("C1E"))
        stats = core.snapshot(4.0)
        assert sum(stats.residency_table().values()) == pytest.approx(1.0)

    def test_transition_counts(self, core, catalog):
        for i in range(3):
            core.enter_idle(2.0 * i + 1.0, catalog.get("C1"))
            core.wake(2.0 * i + 2.0)
        stats = core.snapshot(10.0)
        assert stats.transitions["C1"] == 3
        assert stats.transitions["C0"] == 3

    def test_unknown_state_fraction_zero(self, core):
        stats = core.snapshot(1.0)
        assert stats.residency_fraction("C6") == 0.0


class TestEnergyAccounting:
    def test_pure_active_energy(self, core):
        stats = core.snapshot(2.0)
        assert stats.energy_joules == pytest.approx(8.0)  # 2 s x 4 W
        assert stats.average_power == pytest.approx(4.0)

    def test_mixed_residency_energy_matches_eq2(self, core, catalog):
        # 20% C0 at 4 W + 80% C1 at 1.44 W = 1.952 W average (Eq. 2).
        core.enter_idle(2.0, catalog.get("C1"))
        stats = core.snapshot(10.0)
        assert stats.average_power == pytest.approx(0.2 * 4.0 + 0.8 * 1.44)

    def test_snoop_service_power(self, core, catalog):
        core.enter_idle(1.0, catalog.get("C1"))
        core.begin_snoop_service(2.0, power_delta=0.05)
        assert core.current_power == pytest.approx(1.49)
        core.end_snoop_service(3.0)
        assert core.current_power == pytest.approx(1.44)
        stats = core.snapshot(4.0)
        expected = 4.0 * 1.0 + 1.44 * 1.0 + 1.49 * 1.0 + 1.44 * 1.0
        assert stats.energy_joules == pytest.approx(expected)

    def test_snoop_while_active_rejected(self, core):
        with pytest.raises(SimulationError):
            core.begin_snoop_service(1.0, 0.05)

    def test_wake_clears_snoop_delta(self, core, catalog):
        core.enter_idle(1.0, catalog.get("C1"))
        core.begin_snoop_service(2.0, power_delta=0.05)
        core.wake(3.0)
        assert core.current_power == pytest.approx(4.0)

    def test_dvfs_while_active(self, core):
        core.set_frequency(1.0, FrequencyPoint.TURBO)
        stats = core.snapshot(2.0)
        assert stats.energy_joules == pytest.approx(4.0 + 5.5)

    def test_dvfs_while_idle_rejected(self, core, catalog):
        core.enter_idle(1.0, catalog.get("C1"))
        with pytest.raises(SimulationError):
            core.set_frequency(2.0, FrequencyPoint.TURBO)
