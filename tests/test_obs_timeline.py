"""Telemetry probes: sampler correctness and the zero-cost guarantee.

The load-bearing invariant is bit-identity: arming ``telemetry_hz``
must not change a single bit of any observable, because the sampler
rides the engine's tick hook (fired between heap events, consuming no
sequence numbers) and only ever *reads* simulation state.
"""

import dataclasses
import json
import os
import sys
import time

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from golden_specs import digest_result  # noqa: E402

from repro.cluster.sharding import run_sharded
from repro.obs.timeline import (
    TIMELINE_VERSION,
    TimelineSampler,
    merge_timelines,
)
from repro.server import ServerNode, named_configuration
from repro.simkit import Simulator
from repro.sweep.spec import ScenarioSpec
from repro.workloads import memcached_workload


def _spec(**overrides):
    base = dict(
        workload="memcached", config="baseline", qps=60_000,
        horizon=0.05, seed=42,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestTickHook:
    def test_ticks_fire_at_k_over_hz(self):
        sim = Simulator()
        seen = []
        sim.set_tick_hook(10.0, lambda t: seen.append(t))
        sim.schedule(1.0, lambda: None)
        sim.run(until=1.0)
        assert seen == pytest.approx([k / 10.0 for k in range(11)])

    def test_ticks_consume_no_event_sequence(self):
        def run(hz):
            sim = Simulator()
            if hz:
                sim.set_tick_hook(hz, lambda t: None)
            out = []
            for k in range(5):
                sim.schedule(0.1 * k, lambda k=k: out.append(k))
            sim.run(until=1.0)
            return out, sim.events_processed

        assert run(None) == run(50.0)

    def test_double_hook_rejected(self):
        from repro.errors import SimulationError

        sim = Simulator()
        sim.set_tick_hook(10.0, lambda t: None)
        with pytest.raises(SimulationError):
            sim.set_tick_hook(10.0, lambda t: None)
        sim.clear_tick_hook()
        sim.set_tick_hook(5.0, lambda t: None)


class TestSampler:
    def test_timeline_shape(self):
        result = _spec(telemetry_hz=100).execute()
        timeline = result.timeline
        assert timeline["version"] == TIMELINE_VERSION
        assert timeline["hz"] == 100.0
        times = timeline["times"]
        assert times == [pytest.approx(k / 100.0) for k in range(len(times))]
        assert times[-1] <= 0.05
        for key, values in timeline["series"].items():
            assert len(values) == len(times), key

    def test_expected_series_present(self):
        timeline = _spec(telemetry_hz=50).execute().timeline
        series = timeline["series"]
        for key in ("package_power", "core_power", "energy_j",
                    "in_flight", "queued", "frequency_ghz", "completed"):
            assert key in series
        assert any(key.startswith("cstate.") for key in series)

    def test_completed_series_monotone_and_consistent(self):
        result = _spec(telemetry_hz=200).execute()
        completed = result.timeline["series"]["completed"]
        assert completed == sorted(completed)
        assert completed[-1] <= result.completed

    def test_disabled_by_default(self):
        assert _spec().execute().timeline is None

    def test_standalone_node_arms_sampler(self):
        node = ServerNode(
            memcached_workload(), named_configuration("baseline"),
            qps=40_000, horizon=0.03, seed=1, telemetry_hz=100,
        )
        result = node.run()
        assert result.timeline is not None
        assert len(result.timeline["times"]) > 1

    def test_sampler_rejects_bad_rate(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            _spec(telemetry_hz=0)
        with pytest.raises(ConfigurationError):
            _spec(telemetry_hz=-5)


class TestBitIdentity:
    @pytest.mark.parametrize("overrides", [
        {},
        {"config": "AW", "qps": 100_000, "seed": 7},
        {"nodes": 3, "fanout": 2, "balancer": "jsq", "qps": 90_000},
        {"nodes": 2, "hedge_ms": 0.3, "fanout": 2, "qps": 50_000},
    ])
    def test_probes_do_not_change_results(self, overrides):
        spec = _spec(**overrides)
        plain = spec.execute()
        probed = dataclasses.replace(spec, telemetry_hz=25).execute()
        assert digest_result(probed) == digest_result(plain)
        assert probed.events_processed == plain.events_processed

    def test_telemetry_is_part_of_the_cache_key(self):
        assert _spec().cache_key != _spec(telemetry_hz=25).cache_key
        assert _spec(telemetry_hz=25).cache_key == _spec(telemetry_hz=25).cache_key


class TestClusterMerge:
    def test_sharded_timeline_bit_identical_to_shared_sim(self):
        spec = _spec(nodes=3, qps=120_000, telemetry_hz=50)
        shared = spec.execute()
        sharded = run_sharded(spec, shards=3)
        assert json.dumps(shared.timeline, sort_keys=True) == json.dumps(
            sharded.timeline, sort_keys=True
        )

    def test_merge_timelines_aggregates_sum_and_mean(self):
        a = {
            "version": TIMELINE_VERSION, "hz": 10.0, "times": [0.0, 0.1],
            "series": {"package_power": [1.0, 2.0], "frequency_ghz": [2.0, 2.0]},
        }
        b = {
            "version": TIMELINE_VERSION, "hz": 10.0, "times": [0.0, 0.1],
            "series": {"package_power": [3.0, 4.0], "frequency_ghz": [4.0, 4.0]},
        }
        merged = merge_timelines([a, b])
        assert merged["series"]["package_power"] == [4.0, 6.0]
        assert merged["series"]["frequency_ghz"] == [3.0, 3.0]

    def test_merge_none_passthrough(self):
        assert merge_timelines([None, None]) is None
        single = {
            "version": TIMELINE_VERSION, "hz": 10.0, "times": [0.0],
            "series": {"package_power": [1.0]},
        }
        assert merge_timelines([single]) == single


class TestOverheadBound:
    def test_probes_on_at_10hz_stays_under_1_5x(self):
        """In-process wall-clock bound (the gated floor lives in
        ``repro bench obs_overhead``; this is the loose sanity net)."""
        def timed(hz):
            spec = _spec(qps=100_000, telemetry_hz=hz)
            start = time.perf_counter()
            spec.execute()
            return time.perf_counter() - start

        timed(None)  # warm caches out of the measurement
        best_off = min(timed(None) for _ in range(3))
        best_on = min(timed(10.0) for _ in range(3))
        assert best_on < best_off * 1.5, (
            f"10 Hz telemetry cost {best_on / best_off:.2f}x (limit 1.5x)"
        )
