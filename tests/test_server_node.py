"""Tests for the server-node simulator."""

import pytest

from repro.errors import ConfigurationError
from repro.server import ServerNode, named_configuration, simulate
from repro.server.metrics import compare_latency, compare_power
from repro.simkit.distributions import Degenerate
from repro.units import US
from repro.workloads import memcached_workload
from repro.workloads.base import ServiceTimeModel, Workload


def _quick(config_name="baseline", qps=50_000, horizon=0.05, seed=7, **kw):
    return simulate(
        memcached_workload(),
        named_configuration(config_name),
        qps=qps,
        horizon=horizon,
        seed=seed,
        **kw,
    )


def _deterministic_workload(service_us=10.0, network=117 * US):
    service = ServiceTimeModel(
        scalable=Degenerate(0.0), fixed=Degenerate(service_us * US)
    )
    return Workload("fixed", service, network_latency=network, snoop_rate_hz=0.0)


class TestBasicOperation:
    def test_completes_requests(self):
        result = _quick()
        assert result.completed > 0
        assert result.achieved_qps == pytest.approx(50_000, rel=0.1)

    def test_residency_sums_to_one(self):
        result = _quick()
        assert sum(result.residency.values()) == pytest.approx(1.0, abs=1e-6)

    def test_power_positive_and_below_turbo_max(self):
        result = _quick()
        assert 0.0 < result.avg_core_power < 5.5

    def test_package_power_includes_uncore(self):
        result = _quick()
        assert result.package_power > result.avg_core_power * result.cores

    def test_latency_views(self):
        result = _quick()
        assert result.avg_latency > 0
        assert result.tail_latency >= result.avg_latency
        assert result.avg_latency_e2e == pytest.approx(
            result.avg_latency + result.network_latency
        )

    def test_deterministic_for_fixed_seed(self):
        a = _quick(seed=11)
        b = _quick(seed=11)
        assert a.avg_core_power == b.avg_core_power
        assert a.completed == b.completed
        assert a.residency == b.residency
        assert a.avg_latency == b.avg_latency

    def test_different_seeds_differ(self):
        assert _quick(seed=1).avg_latency != _quick(seed=2).avg_latency

    def test_summary_string(self):
        text = _quick().summary()
        assert "memcached" in text
        assert "residency" in text


class TestValidation:
    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerNode(memcached_workload(), named_configuration("baseline"),
                       qps=1000, cores=0)

    def test_zero_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerNode(memcached_workload(), named_configuration("baseline"),
                       qps=1000, horizon=0.0)


class TestLatencySemantics:
    def test_unloaded_latency_close_to_service_time(self):
        # At trivial load with C-states, latency ~= service + exit latency.
        workload = _deterministic_workload(service_us=10.0)
        result = simulate(
            workload, named_configuration("NT_No_C6_No_C1E"),
            qps=1_000, cores=10, horizon=0.2, seed=3,
        )
        # C1 exit is 1 us; queueing negligible at 0.1% utilisation.
        assert result.avg_latency == pytest.approx(11 * US, rel=0.05)

    def test_c6_wakes_inflate_tail(self):
        # With C6 enabled at low load, wake penalties push p99 up.
        base = _quick("NT_Baseline", qps=10_000, horizon=0.2)
        no_c6 = _quick("NT_No_C6", qps=10_000, horizon=0.2)
        assert base.tail_latency > no_c6.tail_latency

    def test_latency_grows_with_load(self):
        low = _quick(qps=50_000, horizon=0.1)
        high = _quick(qps=450_000, horizon=0.1)
        assert high.tail_latency > low.tail_latency


class TestResidencySemantics:
    def test_utilization_grows_with_load(self):
        low = _quick(qps=20_000)
        high = _quick(qps=400_000)
        assert high.utilization > low.utilization

    def test_only_enabled_states_appear(self):
        result = _quick("NT_No_C6_No_C1E", qps=100_000)
        assert "C6" not in result.residency or result.residency["C6"] == 0.0
        assert "C1E" not in result.residency or result.residency["C1E"] == 0.0

    def test_aw_config_reports_aw_states(self):
        result = _quick("AW", qps=100_000)
        names = set(result.residency)
        assert "C6A" in names or "C6AE" in names
        assert "C1" not in names

    def test_deep_idle_at_low_load(self):
        result = _quick("NT_Baseline", qps=10_000, horizon=0.2)
        deep = result.residency_of("C1E") + result.residency_of("C6")
        assert deep > 0.5

    def test_transitions_recorded(self):
        result = _quick(qps=100_000)
        assert sum(result.transitions_per_second.values()) > 0


class TestPowerSemantics:
    def test_aw_cheaper_than_baseline(self):
        base = _quick("baseline", qps=100_000)
        aw = _quick("AW", qps=100_000)
        assert compare_power(base, aw) > 0.15

    def test_disabling_c1e_costs_power_at_low_load(self):
        # Sec 7.2: idle cores parked in C1 burn more than C1E.
        with_c1e = _quick("NT_No_C6", qps=50_000, horizon=0.1)
        without = _quick("NT_No_C6_No_C1E", qps=50_000, horizon=0.1)
        assert without.avg_core_power > with_c1e.avg_core_power

    def test_power_grows_with_load(self):
        low = _quick(qps=20_000)
        high = _quick(qps=400_000)
        assert high.avg_core_power > low.avg_core_power

    def test_turbo_config_grants_recorded(self):
        result = _quick("baseline", qps=50_000)
        assert 0.0 <= result.turbo_grant_rate <= 1.0
        nt = _quick("NT_Baseline", qps=50_000)
        assert nt.turbo_grant_rate == 0.0


class TestSnoops:
    def test_snoops_served_when_enabled(self):
        result = _quick(qps=20_000, horizon=0.2, snoops_enabled=True)
        assert result.snoops_served > 0

    def test_snoops_disabled(self):
        result = _quick(qps=20_000, snoops_enabled=False)
        assert result.snoops_served == 0

    def test_snoop_traffic_costs_power(self):
        quiet = _quick("NT_No_C6_No_C1E", qps=10_000, horizon=0.2,
                       snoops_enabled=False)
        noisy = _quick("NT_No_C6_No_C1E", qps=10_000, horizon=0.2,
                       snoops_enabled=True)
        assert noisy.avg_core_power >= quiet.avg_core_power


class TestCompareHelpers:
    def test_compare_power_sign(self):
        base = _quick("NT_Baseline", qps=50_000)
        aw = _quick("NT_AW", qps=50_000)
        assert compare_power(base, aw) > 0
        assert compare_power(aw, base) < 0

    def test_compare_latency_tail_flag(self):
        a = _quick("NT_Baseline", qps=10_000, horizon=0.1)
        b = _quick("NT_No_C6", qps=10_000, horizon=0.1)
        assert compare_latency(a, b, tail=True) != compare_latency(a, b, tail=False)
