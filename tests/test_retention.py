"""Tests for context-retention structures (Fig 5, Sec 4.1)."""

import pytest

from repro.errors import PowerModelError
from repro.power.retention import (
    CORE_CONTEXT_BYTES,
    MICROCODE_SRAM_BYTES,
    RetentionPlan,
    SRPGBank,
    UngatedRegisterFile,
    UngatedSRAM,
    context_retention_power,
)
from repro.units import KB, MILLIWATT


class TestContextRetentionPower:
    def test_full_context_at_p1_is_2mw(self):
        # Table 3 beta: ~2 mW at P1 for the ~8 KB context.
        power = context_retention_power(CORE_CONTEXT_BYTES, "P1")
        assert power == pytest.approx(2 * MILLIWATT)

    def test_full_context_at_pn_is_1mw(self):
        power = context_retention_power(CORE_CONTEXT_BYTES, "Pn")
        assert power == pytest.approx(1 * MILLIWATT)

    def test_at_retention_voltage(self):
        power = context_retention_power(CORE_CONTEXT_BYTES, "Vret")
        assert power == pytest.approx(0.2 * MILLIWATT)

    def test_scales_with_size(self):
        half = context_retention_power(CORE_CONTEXT_BYTES // 2, "P1")
        assert half == pytest.approx(1 * MILLIWATT)

    def test_unknown_rail_rejected(self):
        with pytest.raises(PowerModelError):
            context_retention_power(1024, "P2")

    def test_negative_size_rejected(self):
        with pytest.raises(PowerModelError):
            context_retention_power(-1, "P1")


class TestStructures:
    def test_ungated_registers_free_save_restore(self):
        r = UngatedRegisterFile("exec", 1 * KB)
        assert r.save_cycles == 0
        assert r.restore_cycles == 0

    def test_srpg_save_3_to_4_cycles(self):
        assert SRPGBank("csrs", 1 * KB, save_cycles=3).save_cycles == 3
        assert SRPGBank("csrs", 1 * KB, save_cycles=4).save_cycles == 4

    def test_srpg_restore_is_one_cycle(self):
        assert SRPGBank("csrs", 1 * KB).restore_cycles == 1

    def test_srpg_bad_save_cycles_rejected(self):
        with pytest.raises(PowerModelError):
            SRPGBank("csrs", 1 * KB, save_cycles=10)

    def test_ungated_sram_defaults_to_microcode(self):
        s = UngatedSRAM()
        assert s.context_bytes == MICROCODE_SRAM_BYTES
        assert s.save_cycles == 0

    def test_area_overheads_under_1pct(self):
        for s in (UngatedRegisterFile("a", 1024), SRPGBank("b", 1024), UngatedSRAM()):
            assert s.area_overhead_fraction <= 0.01


class TestRetentionPlan:
    def test_default_plan_covers_full_context(self):
        plan = RetentionPlan.default_skylake()
        assert plan.total_context_bytes == CORE_CONTEXT_BYTES

    def test_default_plan_power_matches_table3(self):
        plan = RetentionPlan.default_skylake()
        assert plan.retention_power("P1") == pytest.approx(2 * MILLIWATT)
        assert plan.retention_power("Pn") == pytest.approx(1 * MILLIWATT)

    def test_save_is_srpg_critical_path(self):
        # Structures save in parallel; SRPG's 3-4 cycles dominates.
        plan = RetentionPlan.default_skylake()
        assert 3 <= plan.save_cycles <= 4

    def test_restore_is_one_cycle(self):
        assert RetentionPlan.default_skylake().restore_cycles == 1

    def test_techniques_grouping(self):
        groups = RetentionPlan.default_skylake().by_technique()
        assert "UngatedRegisterFile" in groups
        assert "SRPGBank" in groups
        assert "UngatedSRAM" in groups
        assert len(groups["UngatedRegisterFile"]) == 3

    def test_area_report_keys_match_structures(self):
        plan = RetentionPlan.default_skylake()
        report = plan.area_overhead_report()
        assert set(report) == {s.name for s in plan.structures}

    def test_empty_plan_rejected(self):
        with pytest.raises(PowerModelError):
            RetentionPlan(structures=[])

    def test_duplicate_names_rejected(self):
        with pytest.raises(PowerModelError):
            RetentionPlan(
                structures=[UngatedSRAM("x"), UngatedSRAM("x")]
            )
