"""Observability: trace a simulation and analyse idle-state behaviour.

Run with::

    python examples/trace_observability.py

Attaches a :class:`~repro.simkit.trace.TraceRecorder` to a server node,
then mines the trace for the things a power engineer would ask of a real
system's residency counters: per-core transition rates, idle-interval
length distribution, governor decisions per state, and whether package
C-states could ever have engaged (spoiler: no — see
``repro.uarch.package_cstates``).
"""

from collections import Counter, defaultdict

from repro.server import ServerNode, named_configuration
from repro.simkit.stats import Histogram
from repro.simkit.trace import TraceRecorder
from repro.uarch.package_cstates import package_state_opportunity
from repro.units import US, seconds_to_us
from repro.workloads import memcached_workload


def main() -> None:
    trace = TraceRecorder()
    node = ServerNode(
        workload=memcached_workload(),
        configuration=named_configuration("NT_Baseline"),
        qps=100_000,
        cores=10,
        horizon=0.1,
        seed=17,
        trace=trace,
    )
    result = node.run()
    print(f"Simulated {result.completed} requests; "
          f"trace holds {len(trace)} events\n")

    # 1. Governor decisions: which states were chosen how often?
    decisions = Counter(e.payload for e in trace.filter(kind="enter_idle"))
    print("Governor decisions (idle entries per state):")
    for state, count in decisions.most_common():
        print(f"  {state}: {count}")

    # 2. Idle-interval distribution per core (enter -> wake pairing).
    intervals = []
    entered = defaultdict(list)
    for event in trace:
        if event.kind == "enter_idle":
            entered[event.source].append(event.time)
        elif event.kind == "wake" and entered[event.source]:
            intervals.append(event.time - entered[event.source].pop(0))
    histogram = Histogram(0.0, 500 * US, bins=10)
    for interval in intervals:
        histogram.add(interval)
    print("\nIdle-interval histogram (0-500 us, 50 us bins):")
    for i, count in enumerate(histogram.counts):
        lo = i * 50
        bar = "#" * max(1, count // max(1, histogram.total // 200)) if count else ""
        print(f"  {lo:>3}-{lo + 50:<3} us: {count:>5} {bar}")
    print(f"  overflow (> 500 us): {histogram.overflow}")
    mean_interval = sum(intervals) / len(intervals)
    print(f"  mean idle interval: {seconds_to_us(mean_interval):.1f} us")

    # 3. Could package C-states have engaged at this operating point?
    idle_fraction = 1.0 - result.utilization
    name, fraction = package_state_opportunity(
        per_core_idle_fraction=idle_fraction,
        mean_idle_interval=mean_interval,
        cores=result.cores,
    )
    print(f"\nPackage C-state opportunity: {name} "
          f"(usable {fraction * 100:.1f}% of time)")
    print("Core-level agility (C6A) is the only lever at this load —")
    print("exactly the paper's positioning vs package-level approaches.")


if __name__ == "__main__":
    main()
