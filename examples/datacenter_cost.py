"""Datacenter cost what-if analysis (Sec 7.6 extended).

Run with::

    python examples/datacenter_cost.py

Projects AW's yearly electricity savings for a Memcached fleet under
different electricity prices and PUE assumptions, using simulated
per-core power deltas at a typical 10% utilisation operating point.
"""

from repro.analytical.cost import CostModel
from repro.experiments.common import format_table
from repro.sweep import ScenarioSpec, default_runner


def main() -> None:
    # One representative operating point: ~10% utilisation (100 KQPS).
    qps = 100_000
    base, aw = default_runner().run_many([
        ScenarioSpec(workload="memcached", config=name, qps=qps,
                     horizon=0.2, seed=42)
        for name in ("baseline", "AW")
    ])
    delta = base.avg_core_power - aw.avg_core_power
    print(f"Per-core power saving at {qps // 1000}K QPS: {delta * 1000:.0f} mW")
    print(f"({base.avg_core_power:.2f} W baseline -> {aw.avg_core_power:.2f} W AW)\n")

    prices = [0.08, 0.125, 0.20]  # $/kWh: cheap hydro, paper's rate, EU-ish
    pues = [1.1, 1.4, 1.8]        # hyperscaler, good colo, legacy DC
    rows = []
    for price in prices:
        row = [f"${price:.3f}/kWh"]
        for pue in pues:
            model = CostModel(dollars_per_kwh=price, pue=pue)
            musd = model.yearly_savings_fleet(delta) / 1e6
            row.append(f"${musd:.2f}M")
        rows.append(row)

    print("Yearly savings per 100K servers (20 cores each), by price x PUE")
    print(format_table(["Electricity"] + [f"PUE {p}" for p in pues], rows))

    # Break-even framing: what silicon cost per core would AW amortise
    # in one server lifetime (~4 years)?
    model = CostModel()
    per_core_4yr = model.yearly_savings_per_server(delta) * 4
    print(f"\n4-year savings per core at the paper's rate: ${per_core_4yr:.2f}")
    print("Any per-core implementation cost below that is net-positive.")


if __name__ == "__main__":
    main()
