"""Memcached load sweep: power/latency across request rates and configs.

Run with::

    python examples/memcached_sweep.py [--quick]

Reproduces the core of the paper's evaluation story on one plot-ready
table: for each request rate, the baseline hierarchy, the vendor-tuned
C1-only configuration, and AW — showing that AW is the only point that
wins *both* axes (No_C1E-level latency at far lower power).
"""

import sys

from repro.experiments.common import format_table
from repro.server import named_configuration, simulate
from repro.units import seconds_to_us
from repro.workloads import memcached_workload

CONFIGS = ["NT_Baseline", "NT_No_C6_No_C1E", "NT_C6A_No_C6_No_C1E"]
LABELS = {"NT_Baseline": "baseline", "NT_No_C6_No_C1E": "C1-only",
          "NT_C6A_No_C6_No_C1E": "AW (C6A)"}


def main() -> None:
    quick = "--quick" in sys.argv
    rates_kqps = [10, 100, 400] if quick else [10, 50, 100, 200, 300, 400, 500]
    horizon = 0.1 if quick else 0.3

    rows = []
    for kqps in rates_kqps:
        results = {
            name: simulate(
                memcached_workload(), named_configuration(name),
                qps=kqps * 1000, horizon=horizon, seed=42,
            )
            for name in CONFIGS
        }
        base = results["NT_Baseline"]
        aw = results["NT_C6A_No_C6_No_C1E"]
        savings = (base.avg_core_power - aw.avg_core_power) / base.avg_core_power
        row = [f"{kqps}K"]
        for name in CONFIGS:
            r = results[name]
            row.append(f"{r.avg_core_power:.2f}W")
            row.append(f"{seconds_to_us(r.avg_latency_e2e):.0f}us")
        row.append(f"{savings * 100:.0f}%")
        rows.append(row)

    headers = ["QPS"]
    for name in CONFIGS:
        headers += [f"{LABELS[name]} P", f"{LABELS[name]} lat"]
    headers.append("AW saves")
    print("Memcached sweep: per-core power and avg end-to-end latency")
    print(format_table(headers, rows))
    print("\nReading guide: 'C1-only' beats 'baseline' on latency but burns more")
    print("power; 'AW (C6A)' matches its latency at a fraction of the power.")


if __name__ == "__main__":
    main()
