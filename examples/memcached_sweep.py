"""Memcached load sweep: power/latency across request rates and configs.

Run with::

    python examples/memcached_sweep.py [--quick] [--jobs N]

Reproduces the core of the paper's evaluation story on one plot-ready
table: for each request rate, the baseline hierarchy, the vendor-tuned
C1-only configuration, and AW — showing that AW is the only point that
wins *both* axes (No_C1E-level latency at far lower power).

The sweep is declared as a :class:`repro.sweep.ScenarioGrid` and executed
through :class:`repro.sweep.SweepRunner`; pass ``--jobs 4`` to fan the
points out over worker processes (results are identical either way).
"""

import sys

from repro.experiments.common import format_table
from repro.sweep import ScenarioGrid, SweepRunner
from repro.units import seconds_to_us

CONFIGS = ["NT_Baseline", "NT_No_C6_No_C1E", "NT_C6A_No_C6_No_C1E"]
LABELS = {"NT_Baseline": "baseline", "NT_No_C6_No_C1E": "C1-only",
          "NT_C6A_No_C6_No_C1E": "AW (C6A)"}


def _parse_jobs(argv) -> int:
    if "--jobs" not in argv:
        return 1
    try:
        return int(argv[argv.index("--jobs") + 1])
    except (IndexError, ValueError):
        raise SystemExit("usage: memcached_sweep.py [--quick] [--jobs N]")


def main() -> None:
    quick = "--quick" in sys.argv
    jobs = _parse_jobs(sys.argv)
    rates_kqps = [10, 100, 400] if quick else [10, 50, 100, 200, 300, 400, 500]
    horizon = 0.1 if quick else 0.3

    grid = ScenarioGrid.product(
        workloads=["memcached"],
        configs=CONFIGS,
        qps=[kqps * 1000 for kqps in rates_kqps],
        horizons=[horizon],
        seeds=[42],
    )
    runner = SweepRunner(
        executor="process" if jobs > 1 else "serial", jobs=jobs
    )
    by_key = {
        (spec.config, spec.qps): result
        for spec, result in zip(grid, runner.run_grid(grid))
    }

    rows = []
    for kqps in rates_kqps:
        results = {name: by_key[(name, kqps * 1000.0)] for name in CONFIGS}
        base = results["NT_Baseline"]
        aw = results["NT_C6A_No_C6_No_C1E"]
        savings = (base.avg_core_power - aw.avg_core_power) / base.avg_core_power
        row = [f"{kqps}K"]
        for name in CONFIGS:
            r = results[name]
            row.append(f"{r.avg_core_power:.2f}W")
            row.append(f"{seconds_to_us(r.avg_latency_e2e):.0f}us")
        row.append(f"{savings * 100:.0f}%")
        rows.append(row)

    headers = ["QPS"]
    for name in CONFIGS:
        headers += [f"{LABELS[name]} P", f"{LABELS[name]} lat"]
    headers.append("AW saves")
    print("Memcached sweep: per-core power and avg end-to-end latency")
    print(format_table(headers, rows))
    print("\nReading guide: 'C1-only' beats 'baseline' on latency but burns more")
    print("power; 'AW (C6A)' matches its latency at a fraction of the power.")


if __name__ == "__main__":
    main()
