"""Design-space exploration: stress the AW design point.

Run with::

    python examples/design_space_exploration.py

The paper fixes one Skylake-class design point; this example sweeps the
two most uncertain parameters — power-gate residual leakage and the
UFPG zone count — and reports how C6A power and exit latency move,
re-running the architecture's invariant checks at each point. Useful for
porting AW to a different core (e.g. the Sec 5.5 AMD discussion).
"""

from repro.core import AgileWattsDesign
from repro.core.ufpg import UFPGConfig
from repro.experiments.common import format_table
from repro.units import seconds_to_ns, watts_to_mw


def sweep_residual_leakage() -> None:
    print("Sweep 1: power-gate quality (residual leakage of gated units)")
    rows = []
    for low, high in [(0.01, 0.02), (0.03, 0.05), (0.06, 0.10), (0.10, 0.15)]:
        design = AgileWattsDesign(
            ufpg_config=UFPGConfig(residual_low=low, residual_high=high)
        )
        checks = design.verify()
        rows.append(
            [
                f"{low * 100:.0f}-{high * 100:.0f}%",
                f"{watts_to_mw(design.c6a_power):.0f} mW",
                f"{watts_to_mw(design.c6ae_power):.0f} mW",
                f"{design.c6a_power / 4.0 * 100:.1f}%",
                "OK" if all(checks.values()) else
                ",".join(k for k, v in checks.items() if not v),
            ]
        )
    print(format_table(
        ["Residual", "C6A power", "C6AE power", "of C0", "Invariants"], rows
    ))


def sweep_zone_count() -> None:
    print("\nSweep 2: UFPG staggered wake-up zones")
    rows = []
    for zones in [5, 8, 10, 20]:
        design = AgileWattsDesign(ufpg_config=UFPGConfig(zones=zones))
        rows.append(
            [
                zones,
                f"{seconds_to_ns(design.ufpg.wake_latency):.1f} ns",
                f"{seconds_to_ns(design.flow.exit_latency):.1f} ns",
                f"{seconds_to_ns(design.hardware_round_trip):.1f} ns",
                "yes" if design.ufpg.in_rush_safe else "NO",
            ]
        )
    print(format_table(
        ["Zones", "Stagger wake", "C6A exit", "Round trip", "In-rush safe"], rows
    ))
    print("\nNote: wake time is area-bound (total capacitance), so more zones")
    print("shrink per-zone in-rush current without changing total latency.")


def sweep_c1_power() -> None:
    print("\nSweep 3: porting to a leakier core (core leakage ~ C1 power)")
    rows = []
    for c1_power in [1.0, 1.44, 2.0, 3.0]:
        design = AgileWattsDesign(
            ufpg_config=UFPGConfig(core_leakage_watts=c1_power)
        )
        savings_vs_c1 = (c1_power - design.c6a_power) / c1_power
        rows.append(
            [
                f"{c1_power:.2f} W",
                f"{watts_to_mw(design.c6a_power):.0f} mW",
                f"{savings_vs_c1 * 100:.0f}%",
            ]
        )
    print(format_table(["C1 power", "C6A power", "C6A saves vs C1"], rows))


def main() -> None:
    sweep_residual_leakage()
    sweep_zone_count()
    sweep_c1_power()


if __name__ == "__main__":
    main()
