"""Bring your own workload: evaluate AW on a custom microservice.

Run with::

    python examples/custom_workload.py

Shows the full workload-definition API: a two-component service-time
model (frequency-scalable + fixed), bursty ON/OFF traffic (the paper's
"irregular request streams"), and a side-by-side baseline/AW comparison
including the governor's behaviour under burstiness.
"""

from repro.core.cstates import FrequencyPoint
from repro.experiments.common import format_table, pct
from repro.server import ServerNode, named_configuration
from repro.simkit.distributions import LogNormal, Pareto
from repro.units import US, seconds_to_us
from repro.workloads.base import ServiceTimeModel, Workload
from repro.workloads.loadgen import BurstyLoadGenerator


def build_rpc_workload() -> Workload:
    """A gRPC-style microservice: ~30 us requests, heavy-tailed stalls."""
    service = ServiceTimeModel(
        scalable=LogNormal(mean=12 * US, sigma=0.5, seed=900),  # proto + logic
        fixed=Pareto(mean=18 * US, alpha=2.4, seed=901),        # downstream RPCs
        base_frequency=FrequencyPoint.P1,
    )
    return Workload(
        name="rpc-microservice",
        service=service,
        write_fraction=0.15,
        network_latency=80 * US,
        snoop_rate_hz=150.0,
    )


def run_config(workload: Workload, config_name: str, qps: float):
    node = ServerNode(
        workload=workload,
        configuration=named_configuration(config_name),
        qps=qps,
        cores=10,
        horizon=0.3,
        seed=24,
    )
    # Swap the Poisson arrivals for a bursty ON/OFF stream: 4x peaks with
    # 25% duty cycle, the irregular pattern that defeats idle governors.
    node._loadgen = BurstyLoadGenerator(
        peak_qps=qps * 4, on_mean=2e-3, off_mean=6e-3, seed=25
    )
    return node.run()


def main() -> None:
    workload = build_rpc_workload()
    print(f"Workload: {workload.name}")
    print(f"  mean service time: {seconds_to_us(workload.service.mean):.1f} us")
    print(f"  frequency scalability: {pct(workload.service.frequency_scalability())}")

    qps = 80_000
    rows = []
    for config in ("baseline", "NT_No_C6_No_C1E", "AW"):
        r = run_config(workload, config, qps)
        rows.append(
            [
                config,
                f"{r.avg_core_power:.2f} W",
                f"{seconds_to_us(r.avg_latency_e2e):.0f} us",
                f"{seconds_to_us(r.tail_latency_e2e):.0f} us",
                " ".join(f"{k}={v * 100:.0f}%" for k, v in sorted(r.residency.items())
                         if v >= 0.005),
            ]
        )
    print(f"\nBursty load, average {qps // 1000}K QPS (4x peaks, 25% duty):")
    print(format_table(["Config", "Power/core", "Avg e2e", "p99 e2e", "Residency"], rows))
    print("\nBurstiness is where C6A shines: idle gaps are too irregular for")
    print("the governor to risk C6, but C6A is safe to guess wrong on.")


if __name__ == "__main__":
    main()
