"""Quickstart: build the AgileWatts design, inspect it, simulate it.

Run with::

    python examples/quickstart.py

Walks through the three layers of the library:

1. the architecture model — derive the C6A/C6AE design point (Table 3);
2. the C-state catalog — what the OS-visible hierarchy looks like;
3. the server simulator — AW vs the Skylake baseline on Memcached.
"""

from repro import AgileWattsDesign, named_configuration, simulate
from repro.experiments.common import format_table
from repro.units import pretty_power, pretty_time
from repro.workloads import memcached_workload


def main() -> None:
    # 1. The architecture: subsystem models -> derived design point.
    design = AgileWattsDesign()
    print("\n".join(design.summary_lines()))

    print("\nDesign verification:")
    for check, ok in design.verify().items():
        print(f"  {'PASS' if ok else 'FAIL'}  {check}")

    # 2. The C-state hierarchy AW exposes to the OS.
    print("\nAW C-state catalog:")
    print(
        format_table(
            ["State", "Transition", "Target residency", "Power"],
            design.catalog().table1_rows(),
        )
    )

    # 3. Simulate one Memcached operating point, baseline vs AW.
    workload = memcached_workload()
    qps = 100_000
    print(f"\nSimulating Memcached at {qps // 1000}K QPS (10 cores, 0.2 s)...")
    base = simulate(workload, named_configuration("baseline"), qps=qps, horizon=0.2)
    aw = simulate(workload, named_configuration("AW"), qps=qps, horizon=0.2)

    savings = (base.avg_core_power - aw.avg_core_power) / base.avg_core_power
    latency_delta = (aw.avg_latency_e2e - base.avg_latency_e2e) / base.avg_latency_e2e
    rows = [
        ["baseline", pretty_power(base.avg_core_power),
         pretty_time(base.avg_latency_e2e), pretty_time(base.tail_latency_e2e)],
        ["AW", pretty_power(aw.avg_core_power),
         pretty_time(aw.avg_latency_e2e), pretty_time(aw.tail_latency_e2e)],
    ]
    print(format_table(["Config", "Power/core", "Avg e2e", "p99 e2e"], rows))
    print(f"\nAW saves {savings * 100:.1f}% core power "
          f"at {latency_delta * 100:+.2f}% end-to-end latency.")


if __name__ == "__main__":
    main()
